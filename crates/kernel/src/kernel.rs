//! The kernel facade: syscall layer tying all subsystems together.
//!
//! [`Kernel`] owns the VFS, allocators, journal, block layer, disk,
//! network state, and readahead, and exposes the syscall-like API that
//! workloads drive. Every operation charges a calibrated CPU cost plus
//! the memory accesses of the kernel objects it touches — which is how
//! tier placement of those objects turns into end-to-end performance
//! differences (the paper's central effect).
//!
//! The per-operation object choreography follows paper Fig. 3(b):
//! `create` allocates an inode + dentry and journals the metadata;
//! `write` allocates page-cache pages, radix nodes, extents, and journal
//! heads; writeback allocates bios and blk-mq requests; `fsync` commits
//! the journal; socket I/O allocates socks, skbuffs, data buffers, and
//! RX ring pages.

use std::collections::{BTreeMap, VecDeque};

use kloc_mem::{DiskOp, FrameId, FrameSet, PageKind, TenantId};

use crate::block::BlockLayer;
use crate::disk::{Disk, IoPattern};
use crate::error::KernelError;
use crate::extent::ExtentTree;
use crate::hooks::{Ctx, PageRequest};
use crate::journal::{Journal, MetaUpdate};
use crate::lru::{List, ShardedPageLru};
use crate::net::{NetStats, Packet, RxQueue};
use crate::obj::{Backing, KernelObjectType, ObjectId, ObjectInfo, ObjectTable};
use crate::pagecache::PageCache;
use crate::params::KernelParams;
use crate::readahead::Readahead;
use crate::recovery::{DurableStore, JournalRecord, Promise};
use crate::slab::PackedAllocator;
use crate::stats::{KernelStats, Syscall};
use crate::tenant::{QosClass, TenantSpec, TenantStats, TenantTable};
use crate::vfs::{Fd, Inode, InodeId, InodeKind, Vfs};

/// The simulated kernel.
#[derive(Debug)]
pub struct Kernel {
    params: KernelParams,
    vfs: Vfs,
    objects: ObjectTable,
    slab: PackedAllocator,
    kvma: PackedAllocator,
    journal: Journal,
    disk: Disk,
    block: BlockLayer,
    readahead: Readahead,
    /// LRU of page-cache frames, for the cache-budget shrinker
    /// (sharded; shard count from [`KernelParams::shards`]).
    cache_lru: ShardedPageLru,
    /// frame -> (inode, page index) for cached file pages.
    cache_index: CacheIndex,
    /// Live file page-cache pages (budget accounting).
    cache_pages: u64,
    /// Globally dirty pages and their flush order.
    dirty_pages: u64,
    dirty_list: VecDeque<(InodeId, u64)>,
    /// Frames brought in by readahead, awaiting first real use
    /// (direct-mapped by frame slot — checked on every cache hit).
    prefetched: FrameSet,
    /// What has actually reached the disk (crash-recovery model).
    durable: DurableStore,
    /// What successful `fsync` calls have promised is durable.
    promise: Promise,
    stats: KernelStats,
    net_stats: NetStats,
    /// Tenant registry: specs, per-tenant counters, self-eviction FIFO.
    tenants: TenantTable,
}

impl Kernel {
    /// Creates a kernel with the given parameters.
    pub fn new(params: KernelParams) -> Self {
        Kernel {
            vfs: Vfs::new(),
            objects: ObjectTable::new(),
            slab: PackedAllocator::new(PageKind::Slab, None),
            // Sharded arenas: objects of related inodes share relocatable
            // frames. Sharding bounds internal fragmentation (the paper's
            // <1% Table-6 overhead implies no per-inode page blow-up)
            // while keeping unrelated contexts mostly apart so en-masse
            // knode migration drags little collateral.
            kvma: PackedAllocator::new(PageKind::KernelVma, Some(64)),
            journal: Journal::new(params.journal_txn_max),
            disk: Disk::nvme(),
            block: BlockLayer::new(),
            readahead: Readahead::new(params.readahead_max),
            cache_lru: ShardedPageLru::new(params.shards),
            cache_index: CacheIndex::new(params.shards),
            cache_pages: 0,
            dirty_pages: 0,
            dirty_list: VecDeque::new(),
            prefetched: FrameSet::new(),
            durable: DurableStore::default(),
            promise: Promise::default(),
            stats: KernelStats::default(),
            net_stats: NetStats::default(),
            tenants: TenantTable::new(),
            params,
        }
    }

    /// Kernel parameters.
    pub fn params(&self) -> &KernelParams {
        &self.params
    }

    /// Kernel statistics.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Network statistics.
    pub fn net_stats(&self) -> &NetStats {
        &self.net_stats
    }

    /// Registers (or replaces) a tenant. Budgets take effect on the
    /// tenant's next allocation; nothing is reclaimed retroactively.
    pub fn register_tenant(&mut self, spec: TenantSpec) {
        self.tenants.register(spec);
    }

    /// The tenant registry (specs + per-tenant counters).
    pub fn tenants(&self) -> &TenantTable {
        &self.tenants
    }

    /// A copy of one tenant's counters (zeros if it never acted).
    pub fn tenant_stats(&self, id: TenantId) -> TenantStats {
        self.tenants.stats(id)
    }

    /// QoS class a tenant is scheduled under. Unregistered principals
    /// (including the shared-kernel default tenant) are scavengers:
    /// anything that never declared a class yields first.
    fn qos_of(&self, id: TenantId) -> QosClass {
        self.tenants.spec(id).map_or(QosClass::BestEffort, |s| s.qos)
    }

    /// The QoS class that pays reclaim next — the most-scavenger class
    /// among tenants currently holding page-cache residency — plus
    /// whether more than one distinct class holds residency (plain LRU
    /// reclaim applies when only one does; there is nobody to protect).
    fn reclaim_floor(&self) -> (Option<QosClass>, bool) {
        let mut seen = [false; 3];
        for i in 0..self.tenants.stats_len() {
            let id = TenantId(i as u16);
            if self.tenants.stats(id).pc_resident > 0 {
                seen[self.qos_of(id) as usize] = true;
            }
        }
        let floor = [QosClass::BestEffort, QosClass::Burstable, QosClass::Guaranteed]
            .into_iter()
            .find(|q| seen[*q as usize]);
        (floor, seen.iter().filter(|s| **s).count() > 1)
    }

    /// Applies a `sys_kloc_memsize`-style mid-run budget resize
    /// (DESIGN.md §13). Returns `Ok(false)` when `id` was never
    /// registered. A page-cache shrink is enforced by *gradual*
    /// self-eviction: at most [`KernelParams::resize_evict_step`] pages
    /// (clamped to at least 1) are reclaimed here, and the insert-time
    /// cap works off the remainder — a large shrink degrades the tenant
    /// over time instead of stalling the run on one giant reclaim. Fast
    /// budgets take effect at the policy's next placement decision.
    ///
    /// # Errors
    /// Propagates I/O errors from flushing dirty victim pages.
    pub fn resize_tenant_budget(
        &mut self,
        ctx: &mut Ctx<'_>,
        id: TenantId,
        pc_budget: Option<u64>,
        fast_budget_frames: Option<u64>,
    ) -> Result<bool, KernelError> {
        if !self.tenants.resize_budget(id, pc_budget, fast_budget_frames) {
            return Ok(false);
        }
        if let Some(cap) = pc_budget {
            let step = self.params.resize_evict_step.max(1);
            let mut evicted = 0;
            while evicted < step && self.tenants.stats(id).pc_resident > cap {
                if !self.self_evict_one(ctx, id, Some("resize"))? {
                    break;
                }
                evicted += 1;
            }
        }
        Ok(true)
    }

    /// The storage device.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// The block layer.
    pub fn block(&self) -> &BlockLayer {
        &self.block
    }

    /// The journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The readahead engine.
    pub fn readahead(&self) -> &Readahead {
        &self.readahead
    }

    /// Live kernel objects.
    pub fn objects(&self) -> &ObjectTable {
        &self.objects
    }

    /// The VFS tables.
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Live file page-cache pages.
    pub fn cache_pages(&self) -> u64 {
        self.cache_pages
    }

    /// Globally dirty pages.
    pub fn dirty_pages(&self) -> u64 {
        self.dirty_pages
    }

    /// What has reached the disk: data-page versions and journal
    /// records. Feed to [`crate::recovery::recover`] after a simulated
    /// crash.
    pub fn durable(&self) -> &DurableStore {
        &self.durable
    }

    /// The fsync oracle: what successful `fsync` calls promised. Feed
    /// to [`crate::recovery::check`] alongside the recovered state.
    pub fn promise(&self) -> &Promise {
        &self.promise
    }

    /// Aborts the syscall with [`KernelError::Crashed`] when a
    /// time-scheduled crash fault is due (no-op without faults).
    fn crash_check(&mut self, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        if ctx.mem.fault_crash_due() {
            return Err(KernelError::Crashed);
        }
        Ok(())
    }

    /// blk-mq error handling: consumes any injected fault for `op`,
    /// retrying with bounded exponential backoff charged to the virtual
    /// clock. Errors out with [`KernelError::Io`] once
    /// [`KernelParams::io_max_retries`] is exceeded. On the faultless
    /// path this is a single cheap check.
    fn disk_retry(&mut self, ctx: &mut Ctx<'_>, op: DiskOp) -> Result<(), KernelError> {
        let mut attempt: u32 = 0;
        while ctx.mem.fault_take_disk(op) {
            self.disk.record_io_error();
            attempt += 1;
            if attempt > self.params.io_max_retries {
                return Err(KernelError::Io(op));
            }
            let backoff =
                (self.params.io_retry_base * (1u64 << (attempt - 1))).min(self.params.io_retry_cap);
            ctx.mem.charge(backoff);
            self.disk.record_retry();
            let t = ctx.mem.now().as_nanos();
            kloc_trace::emit(|| kloc_trace::Event::Retry {
                t,
                op: op.label().to_string(),
                attempt: u64::from(attempt),
                backoff: backoff.as_nanos(),
            });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Object helpers
    // ------------------------------------------------------------------

    /// Allocates a kernel object, charging CPU cost and firing hooks.
    fn alloc_object(
        &mut self,
        ctx: &mut Ctx<'_>,
        ty: KernelObjectType,
        inode: Option<InodeId>,
        readahead: bool,
    ) -> Result<ObjectId, KernelError> {
        let frame = match ty.backing() {
            Backing::Slab => {
                if ctx.hooks.relocatable_kernel_alloc() {
                    ctx.mem.charge(self.params.kvma_alloc_cpu);
                    self.kvma.alloc(ctx, ty, inode, readahead)?
                } else {
                    ctx.mem.charge(self.params.slab_alloc_cpu);
                    self.slab.alloc(ctx, ty, inode, readahead)?
                }
            }
            Backing::Page(kind) => {
                ctx.mem.charge(self.params.page_alloc_cpu);
                let req = PageRequest {
                    kind,
                    ty: Some(ty),
                    inode,
                    readahead,
                    cpu: ctx.cpu,
                    tenant: ctx.tenant,
                };
                let placement = ctx.hooks.place_page(&req, ctx.mem);
                let frame = ctx.mem.allocate_preferring(&placement.preference, kind)?;
                // Page-backed kernel frames are owned by the allocating
                // tenant; slab frames stay on TenantId::DEFAULT because
                // a packed slab page can host objects of many tenants.
                if ctx.tenant != TenantId::DEFAULT {
                    ctx.mem.set_frame_tenant(frame, ctx.tenant)?;
                }
                frame
            }
        };
        let info = ObjectInfo {
            ty,
            size: ty.size(),
            inode,
        };
        let obj = self.objects.insert(info, frame, ctx.mem.now());
        self.stats.on_alloc(ty);
        if matches!(ty.backing(), Backing::Slab) {
            kloc_trace::with_counters(|c| c.slab_allocs += 1);
        }
        ctx.hooks
            .on_object_alloc(obj, &info, frame, ctx.cpu, ctx.mem);
        Ok(obj)
    }

    /// Frees a kernel object, charging CPU cost and firing hooks.
    fn free_object(&mut self, ctx: &mut Ctx<'_>, obj: ObjectId) -> Result<(), KernelError> {
        let kobj = self
            .objects
            .remove(obj)
            .ok_or(KernelError::BadObject(obj))?;
        let lifetime = ctx.mem.now().saturating_sub(kobj.allocated_at);
        self.stats.on_free(kobj.info.ty, lifetime);
        if matches!(kobj.info.ty.backing(), Backing::Slab) {
            kloc_trace::with_counters(|c| c.slab_frees += 1);
        }
        ctx.mem.charge(self.params.free_cpu);
        ctx.hooks
            .on_object_free(obj, &kobj.info, kobj.frame, ctx.mem);
        match kobj.info.ty.backing() {
            Backing::Slab => {
                let kind = ctx.mem.frame(kobj.frame)?.kind();
                if kind == PageKind::KernelVma {
                    self.kvma
                        .free(ctx, kobj.info.ty, kobj.info.inode, kobj.frame)?;
                } else {
                    self.slab
                        .free(ctx, kobj.info.ty, kobj.info.inode, kobj.frame)?;
                }
            }
            Backing::Page(_) => {
                if self.cache_index.remove(kobj.frame) {
                    self.cache_pages -= 1;
                }
                self.cache_lru.remove(kobj.frame);
                self.prefetched.remove(kobj.frame);
                ctx.hooks.on_page_free(kobj.frame, ctx.mem);
                ctx.mem.free(kobj.frame)?;
            }
        }
        Ok(())
    }

    /// Charges a memory access to a kernel object and fires hooks.
    fn access_object(
        &mut self,
        ctx: &mut Ctx<'_>,
        obj: ObjectId,
        bytes: u64,
        write: bool,
    ) -> Result<(), KernelError> {
        let kobj = *self.objects.get(obj).ok_or(KernelError::BadObject(obj))?;
        if write {
            ctx.mem.write_from(ctx.socket, kobj.frame, bytes);
        } else {
            ctx.mem.read_from(ctx.socket, kobj.frame, bytes);
        }
        self.cache_lru.mark_accessed(kobj.frame);
        ctx.hooks
            .on_object_access(obj, &kobj.info, kobj.frame, ctx.cpu, ctx.tenant, ctx.mem);
        Ok(())
    }

    /// Re-associates an object with a socket inode after late demux and
    /// fires the association hook (paper §4.2.3 ingress path).
    fn associate_object(
        &mut self,
        ctx: &mut Ctx<'_>,
        obj: ObjectId,
        inode: InodeId,
    ) -> Result<(), KernelError> {
        let kobj = *self
            .objects
            .set_inode(obj, inode)
            .ok_or(KernelError::BadObject(obj))?;
        ctx.hooks
            .on_object_associate(obj, &kobj.info, kobj.frame, ctx.cpu, ctx.mem);
        Ok(())
    }

    /// Adds a journal head for a metadata update; commits if the
    /// transaction fills.
    fn journal_add(
        &mut self,
        ctx: &mut Ctx<'_>,
        inode: Option<InodeId>,
        update: MetaUpdate,
    ) -> Result<(), KernelError> {
        let head = self.alloc_object(ctx, KernelObjectType::JournalHead, inode, false)?;
        self.access_object(ctx, head, KernelObjectType::JournalHead.size(), true)?;
        if self.journal.add(head, inode, update) {
            self.commit_journal(ctx)?;
        }
        Ok(())
    }

    /// Commits the running journal transaction: writes journal blocks
    /// sequentially to disk and releases the heads.
    pub fn commit_journal(&mut self, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        let Some(spec) = self.journal.commit() else {
            return Ok(());
        };
        let _attrib = kloc_trace::scope("journal");
        let head_count = spec.heads.len() as u64;
        let updates: Vec<(InodeId, MetaUpdate)> = spec
            .heads
            .iter()
            .filter_map(|h| h.inode.map(|i| (i, h.update)))
            .collect();
        let blocks_total = spec.blocks as u32;
        // Scheduled crash at this commit ordinal: only the first
        // `after` journal blocks become durable (0 = clean boundary,
        // more = a torn record) and the machine dies.
        let commit_idx = self.durable.journal.len() as u64;
        if let Some(after) = ctx.mem.fault_crash_at_commit(commit_idx) {
            self.durable.journal.push(JournalRecord {
                updates,
                blocks_total,
                blocks_written: after.min(blocks_total),
            });
            return Err(KernelError::Crashed);
        }
        let mut blocks = Vec::with_capacity(spec.blocks);
        for _ in 0..spec.blocks {
            let b = self.alloc_object(ctx, KernelObjectType::JournalBlock, None, false)?;
            self.access_object(ctx, b, kloc_mem::PAGE_SIZE, true)?;
            blocks.push(b);
        }
        self.disk_retry(ctx, DiskOp::Write)?;
        self.disk.submit_write(
            ctx.mem.now(),
            spec.blocks as u64 * kloc_mem::PAGE_SIZE,
            IoPattern::Sequential,
        );
        self.durable.journal.push(JournalRecord {
            updates,
            blocks_total,
            blocks_written: blocks_total,
        });
        let t = ctx.mem.now().as_nanos();
        kloc_trace::emit(|| kloc_trace::Event::JournalCommit {
            t,
            heads: head_count,
            blocks: spec.blocks as u64,
        });
        for head in spec.heads {
            self.free_object(ctx, head.obj)?;
        }
        for b in blocks {
            self.free_object(ctx, b)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Filesystem syscalls
    // ------------------------------------------------------------------

    /// Creates and opens a new file.
    ///
    /// # Errors
    /// [`KernelError::Exists`] if the path is taken.
    pub fn create(&mut self, ctx: &mut Ctx<'_>, path: &str) -> Result<Fd, KernelError> {
        self.stats.on_syscall(Syscall::Create);
        ctx.mem.charge(self.params.syscall_base);
        let _attrib = kloc_trace::scope("create");
        self.crash_check(ctx)?;
        if self.vfs.lookup_path(path).is_some() {
            return Err(KernelError::Exists(path.to_owned()));
        }
        let ino = self.vfs.next_inode_id();
        ctx.hooks.on_inode_create(ino, ctx.cpu, ctx.tenant, ctx.mem);

        let inode_obj = self.alloc_object(ctx, KernelObjectType::Inode, Some(ino), false)?;
        self.access_object(ctx, inode_obj, KernelObjectType::Inode.size(), true)?;
        let dentry_obj = self.alloc_object(ctx, KernelObjectType::Dentry, Some(ino), false)?;
        self.access_object(ctx, dentry_obj, KernelObjectType::Dentry.size(), true)?;
        self.journal_add(ctx, Some(ino), MetaUpdate::Create)?;

        let inode = Inode {
            id: ino,
            kind: InodeKind::RegularFile,
            owner: ctx.tenant,
            size: 0,
            nlink: 1,
            open_count: 1,
            inode_obj,
            dentry_obj: Some(dentry_obj),
            sock_obj: None,
            cache: PageCache::new(self.params.radix_fanout),
            extents: ExtentTree::new(self.params.extent_span),
            rx: RxQueue::new(),
            created_at: ctx.mem.now(),
            last_activity: ctx.mem.now(),
        };
        self.vfs.insert_inode(inode);
        self.vfs.bind_path(path, ino);
        let file_obj = self.alloc_object(ctx, KernelObjectType::FileHandle, Some(ino), false)?;
        let fd = self.vfs.open_fd(ino, file_obj);
        ctx.hooks.on_inode_open(ino, ctx.cpu, ctx.mem);
        Ok(fd)
    }

    /// Opens an existing file.
    ///
    /// # Errors
    /// [`KernelError::NoEntry`] if the path does not resolve.
    pub fn open(&mut self, ctx: &mut Ctx<'_>, path: &str) -> Result<Fd, KernelError> {
        self.stats.on_syscall(Syscall::Open);
        ctx.mem.charge(self.params.syscall_base);
        let _attrib = kloc_trace::scope("open");
        self.crash_check(ctx)?;
        let ino = self
            .vfs
            .lookup_path(path)
            .ok_or_else(|| KernelError::NoEntry(path.to_owned()))?;

        // Dentry-cache lookup.
        let dentry = self
            .vfs
            .inode(ino)
            .ok_or(KernelError::BadInode(ino))?
            .dentry_obj;
        match dentry {
            Some(d) => {
                self.stats.dentry_hits += 1;
                self.access_object(ctx, d, KernelObjectType::Dentry.size(), false)?;
            }
            None => {
                // Cold lookup: read the directory block, repopulate.
                self.stats.dentry_misses += 1;
                self.disk_retry(ctx, DiskOp::Read)?;
                let stall =
                    self.disk
                        .read_sync(ctx.mem.now(), kloc_mem::PAGE_SIZE, IoPattern::Random);
                ctx.mem.charge(stall);
                let d = self.alloc_object(ctx, KernelObjectType::Dentry, Some(ino), false)?;
                self.access_object(ctx, d, KernelObjectType::Dentry.size(), true)?;
                self.vfs
                    .inode_mut(ino)
                    .ok_or(KernelError::BadInode(ino))?
                    .dentry_obj = Some(d);
            }
        }

        let inode_obj = self
            .vfs
            .inode(ino)
            .ok_or(KernelError::BadInode(ino))?
            .inode_obj;
        self.access_object(ctx, inode_obj, KernelObjectType::Inode.size(), false)?;
        let file_obj = self.alloc_object(ctx, KernelObjectType::FileHandle, Some(ino), false)?;
        let fd = self.vfs.open_fd(ino, file_obj);
        let inode = self.vfs.inode_mut(ino).ok_or(KernelError::BadInode(ino))?;
        inode.open_count += 1;
        inode.last_activity = ctx.mem.now();
        if inode.open_count == 1 {
            ctx.hooks.on_inode_open(ino, ctx.cpu, ctx.mem);
        }
        Ok(fd)
    }

    fn resolve(&self, fd: Fd) -> Result<(InodeId, ObjectId), KernelError> {
        let of = self.vfs.fd(fd).ok_or(KernelError::BadFd(fd))?;
        Ok((of.inode, of.file_obj))
    }

    /// Writes `len` bytes at `offset`. Returns bytes written.
    ///
    /// # Errors
    /// [`KernelError::BadFd`] for closed descriptors;
    /// [`KernelError::WrongKind`] for sockets.
    pub fn write(
        &mut self,
        ctx: &mut Ctx<'_>,
        fd: Fd,
        offset: u64,
        len: u64,
    ) -> Result<u64, KernelError> {
        self.stats.on_syscall(Syscall::Write);
        ctx.mem.charge(self.params.syscall_base);
        let _attrib = kloc_trace::scope("write");
        self.crash_check(ctx)?;
        let (ino, file_obj) = self.resolve(fd)?;
        self.access_object(ctx, file_obj, 64, false)?;
        if len == 0 {
            return Ok(0);
        }
        {
            let inode = self.vfs.inode(ino).ok_or(KernelError::BadInode(ino))?;
            if inode.kind != InodeKind::RegularFile {
                return Err(KernelError::WrongKind(ino));
            }
        }

        // Growth: extents + journaled metadata update.
        let new_size = {
            let inode = self.vfs.inode(ino).ok_or(KernelError::BadInode(ino))?;
            inode.size.max(offset + len)
        };
        let grew = {
            let inode = self.vfs.inode(ino).ok_or(KernelError::BadInode(ino))?;
            new_size > inode.size
        };
        if grew {
            let missing = {
                let inode = self.vfs.inode(ino).ok_or(KernelError::BadInode(ino))?;
                inode.extents.missing_spans(new_size)
            };
            for start in missing {
                let e = self.alloc_object(ctx, KernelObjectType::Extent, Some(ino), false)?;
                self.access_object(ctx, e, KernelObjectType::Extent.size(), true)?;
                self.vfs
                    .inode_mut(ino)
                    .ok_or(KernelError::BadInode(ino))?
                    .extents
                    .insert(start, e);
            }
            let inode_obj = self
                .vfs
                .inode(ino)
                .ok_or(KernelError::BadInode(ino))?
                .inode_obj;
            self.access_object(ctx, inode_obj, KernelObjectType::Inode.size(), true)?;
            self.journal_add(ctx, Some(ino), MetaUpdate::Size(new_size))?;
            self.vfs
                .inode_mut(ino)
                .ok_or(KernelError::BadInode(ino))?
                .size = new_size;
        }

        // Per-page cache writes.
        let first = offset / kloc_mem::PAGE_SIZE;
        let last = (offset + len - 1) / kloc_mem::PAGE_SIZE;
        for idx in first..=last {
            let page_off = idx * kloc_mem::PAGE_SIZE;
            let lo = offset.max(page_off);
            let hi = (offset + len).min(page_off + kloc_mem::PAGE_SIZE);
            let bytes = hi - lo;
            self.write_cache_page(ctx, ino, idx, bytes)?;
        }
        self.vfs
            .inode_mut(ino)
            .ok_or(KernelError::BadInode(ino))?
            .last_activity = ctx.mem.now();

        // Background writeback + cache budget.
        if self.dirty_pages as usize >= self.params.writeback_threshold {
            let flush = self.params.writeback_threshold / 2;
            self.writeback(ctx, flush)?;
        }
        self.shrink_cache(ctx)?;
        Ok(len)
    }

    /// Writes `bytes` into page `idx` of `ino`, allocating cache
    /// structures as needed.
    fn write_cache_page(
        &mut self,
        ctx: &mut Ctx<'_>,
        ino: InodeId,
        idx: u64,
        bytes: u64,
    ) -> Result<(), KernelError> {
        // Radix traversal.
        let node = self
            .vfs
            .inode(ino)
            .ok_or(KernelError::BadInode(ino))?
            .cache
            .node_for(idx);
        if let Some(n) = node {
            self.access_object(ctx, n, 64, false)?;
        }
        let cached = self
            .vfs
            .inode(ino)
            .ok_or(KernelError::BadInode(ino))?
            .cache
            .get(idx)
            .copied();
        match cached {
            Some(page) => {
                self.stats.cache_hits += 1;
                kloc_trace::with_counters(|c| c.pc_hits += 1);
                ctx.mem.write_from(ctx.socket, page.frame, bytes);
                self.cache_lru.mark_accessed(page.frame);
                self.note_prefetch_hit(page.frame);
                let inode = self.vfs.inode_mut(ino).ok_or(KernelError::BadInode(ino))?;
                let was_dirty = inode.cache.get(idx).map(|p| p.dirty).unwrap_or(false);
                inode.cache.mark_dirty(idx);
                if !was_dirty {
                    self.dirty_pages += 1;
                    self.dirty_list.push_back((ino, idx));
                }
                if let Some(kobj) = self.objects.get(page.obj) {
                    let info = kobj.info;
                    let frame = kobj.frame;
                    ctx.hooks
                        .on_object_access(page.obj, &info, frame, ctx.cpu, ctx.tenant, ctx.mem);
                }
            }
            None => {
                self.stats.cache_misses += 1;
                kloc_trace::with_counters(|c| c.pc_misses += 1);
                self.insert_cache_page(ctx, ino, idx, true, false)?;
                let frame = self
                    .vfs
                    .inode(ino)
                    .ok_or(KernelError::BadInode(ino))?
                    .cache
                    .get(idx)
                    .expect("just inserted") // lint: unwrap-ok — inserted into the cache just above
                    .frame;
                ctx.mem.write_from(ctx.socket, frame, bytes);
            }
        }
        Ok(())
    }

    /// Allocates a page-cache page (and radix node if needed) for
    /// (`ino`, `idx`) and inserts it into the inode's cache and the
    /// global cache LRU.
    fn insert_cache_page(
        &mut self,
        ctx: &mut Ctx<'_>,
        ino: InodeId,
        idx: u64,
        dirty: bool,
        readahead: bool,
    ) -> Result<FrameId, KernelError> {
        // Per-tenant cache cap: the page's *owner* (the inode's creator,
        // not the faulting tenant) self-evicts before this insert, so a
        // capped tenant can never exceed its budget — and never reclaims
        // a neighbour's page doing so.
        let owner = self.vfs.inode(ino).ok_or(KernelError::BadInode(ino))?.owner;
        if let Some(cap) = self.tenants.pc_budget(owner) {
            self.enforce_tenant_pc_cap(ctx, owner, cap)?;
        }
        let needs_node = self
            .vfs
            .inode(ino)
            .ok_or(KernelError::BadInode(ino))?
            .cache
            .needs_node(idx);
        if needs_node {
            let n = self.alloc_object(ctx, KernelObjectType::RadixNode, Some(ino), readahead)?;
            self.access_object(ctx, n, KernelObjectType::RadixNode.size(), true)?;
            self.vfs
                .inode_mut(ino)
                .ok_or(KernelError::BadInode(ino))?
                .cache
                .install_node(idx, n);
        }
        let obj = self.alloc_object(ctx, KernelObjectType::PageCache, Some(ino), readahead)?;
        let frame = self.objects.get(obj).expect("just allocated").frame; // lint: unwrap-ok — alloc_object just created it
        self.vfs
            .inode_mut(ino)
            .ok_or(KernelError::BadInode(ino))?
            .cache
            .insert(idx, obj, frame, dirty);
        self.cache_lru.insert(frame, List::Inactive);
        self.cache_lru.mark_accessed(frame);
        self.cache_index.insert(frame, ino, idx);
        self.cache_pages += 1;
        self.tenants.note_pc_insert(owner, ino, idx);
        if dirty {
            self.dirty_pages += 1;
            self.dirty_list.push_back((ino, idx));
        }
        Ok(frame)
    }

    /// Self-eviction for a tenant at or over its page-cache cap: reclaim
    /// the tenant's own oldest cached page (flushing it first when
    /// dirty), skipping ledger entries already removed by the global
    /// shrinker or an unlink. Runs before an insert, so the incoming
    /// page is never its own victim.
    fn enforce_tenant_pc_cap(
        &mut self,
        ctx: &mut Ctx<'_>,
        owner: TenantId,
        cap: u64,
    ) -> Result<(), KernelError> {
        while self.tenants.stats(owner).pc_resident >= cap {
            if !self.self_evict_one(ctx, owner, None)? {
                break;
            }
        }
        Ok(())
    }

    /// Reclaims one of `owner`'s own cached pages, oldest first
    /// (flushing it when dirty), skipping ledger entries already
    /// removed by the global shrinker or an unlink. Returns `Ok(false)`
    /// when the ledger is exhausted. `degrade_action` labels the
    /// eviction as QoS degradation (a `degrade` trace event plus the
    /// tenant's `preempted` counter); `None` keeps the steady-state cap
    /// enforcement event-silent, exactly as before resize existed.
    fn self_evict_one(
        &mut self,
        ctx: &mut Ctx<'_>,
        owner: TenantId,
        degrade_action: Option<&'static str>,
    ) -> Result<bool, KernelError> {
        loop {
            let Some((vino, vidx)) = self.tenants.pop_oldest(owner) else {
                return Ok(false);
            };
            let dirty = self
                .vfs
                .inode(vino)
                .and_then(|i| i.cache.get(vidx))
                .map(|p| p.dirty);
            let Some(dirty) = dirty else {
                continue; // stale ledger entry
            };
            if dirty {
                self.flush_pages(ctx, vino, &[vidx])?;
            }
            self.drop_cache_page(ctx, vino, vidx)?;
            self.tenants.stats_mut(owner).pc_self_evicted += 1;
            self.stats.reclaimed_pages += 1;
            if let Some(action) = degrade_action {
                self.tenants.stats_mut(owner).preempted += 1;
                let qos = self.qos_of(owner);
                let t = ctx.mem.now().as_nanos();
                kloc_trace::emit(|| kloc_trace::Event::Degrade {
                    t,
                    tenant: u64::from(owner.0),
                    qos: qos.to_string(),
                    action: action.to_string(),
                    pages: 1,
                });
            }
            return Ok(true);
        }
    }

    fn note_prefetch_hit(&mut self, frame: FrameId) {
        if self.prefetched.remove(frame) {
            self.readahead.record_useful();
        }
    }

    /// Reads `len` bytes at `offset`. Returns bytes actually read
    /// (clamped to the file size).
    ///
    /// # Errors
    /// [`KernelError::BadFd`] / [`KernelError::WrongKind`] as for
    /// [`Kernel::write`].
    pub fn read(
        &mut self,
        ctx: &mut Ctx<'_>,
        fd: Fd,
        offset: u64,
        len: u64,
    ) -> Result<u64, KernelError> {
        self.stats.on_syscall(Syscall::Read);
        ctx.mem.charge(self.params.syscall_base);
        let _attrib = kloc_trace::scope("read");
        self.crash_check(ctx)?;
        let (ino, file_obj) = self.resolve(fd)?;
        self.access_object(ctx, file_obj, 64, false)?;
        let size = {
            let inode = self.vfs.inode(ino).ok_or(KernelError::BadInode(ino))?;
            if inode.kind != InodeKind::RegularFile {
                return Err(KernelError::WrongKind(ino));
            }
            inode.size
        };
        if offset >= size || len == 0 {
            return Ok(0);
        }
        let len = len.min(size - offset);

        let first = offset / kloc_mem::PAGE_SIZE;
        let last = (offset + len - 1) / kloc_mem::PAGE_SIZE;
        for idx in first..=last {
            let page_off = idx * kloc_mem::PAGE_SIZE;
            let lo = offset.max(page_off);
            let hi = (offset + len).min(page_off + kloc_mem::PAGE_SIZE);
            let bytes = hi - lo;
            self.read_cache_page(ctx, ino, idx, bytes)?;

            // Adaptive readahead.
            let window = self.readahead.on_read(ino, idx);
            if window > 0 {
                self.prefetch(ctx, ino, idx + 1, window, size)?;
            }
        }
        self.vfs
            .inode_mut(ino)
            .ok_or(KernelError::BadInode(ino))?
            .last_activity = ctx.mem.now();
        self.shrink_cache(ctx)?;
        Ok(len)
    }

    fn read_cache_page(
        &mut self,
        ctx: &mut Ctx<'_>,
        ino: InodeId,
        idx: u64,
        bytes: u64,
    ) -> Result<(), KernelError> {
        let node = self
            .vfs
            .inode(ino)
            .ok_or(KernelError::BadInode(ino))?
            .cache
            .node_for(idx);
        if let Some(n) = node {
            self.access_object(ctx, n, 64, false)?;
        }
        let cached = self
            .vfs
            .inode(ino)
            .ok_or(KernelError::BadInode(ino))?
            .cache
            .get(idx)
            .copied();
        match cached {
            Some(page) => {
                self.stats.cache_hits += 1;
                kloc_trace::with_counters(|c| c.pc_hits += 1);
                ctx.mem.read_from(ctx.socket, page.frame, bytes);
                self.cache_lru.mark_accessed(page.frame);
                self.note_prefetch_hit(page.frame);
                if let Some(kobj) = self.objects.get(page.obj) {
                    let info = kobj.info;
                    let frame = kobj.frame;
                    ctx.hooks
                        .on_object_access(page.obj, &info, frame, ctx.cpu, ctx.tenant, ctx.mem);
                }
            }
            None => {
                // Major fault: synchronous disk read.
                self.stats.cache_misses += 1;
                kloc_trace::with_counters(|c| c.pc_misses += 1);
                self.disk_retry(ctx, DiskOp::Read)?;
                let stall =
                    self.disk
                        .read_sync(ctx.mem.now(), kloc_mem::PAGE_SIZE, IoPattern::Random);
                ctx.mem.charge(stall);
                let frame = self.insert_cache_page(ctx, ino, idx, false, false)?;
                if self.params.batch_accesses {
                    // Fill + read back-to-back with no hook in between:
                    // one batched charge, identical cost sum.
                    ctx.mem.access_batch(
                        Some(ctx.socket),
                        &[
                            kloc_mem::AccessOp::write(frame, kloc_mem::PAGE_SIZE),
                            kloc_mem::AccessOp::read(frame, bytes),
                        ],
                    );
                } else {
                    ctx.mem.write_from(ctx.socket, frame, kloc_mem::PAGE_SIZE); // fill
                    ctx.mem.read_from(ctx.socket, frame, bytes);
                }
            }
        }
        Ok(())
    }

    /// Prefetches up to `window` pages starting at `start` (bounded by
    /// the file size). Disk reads are asynchronous.
    fn prefetch(
        &mut self,
        ctx: &mut Ctx<'_>,
        ino: InodeId,
        start: u64,
        window: u64,
        size: u64,
    ) -> Result<(), KernelError> {
        let _attrib = kloc_trace::scope("readahead");
        let max_idx = if size == 0 {
            0
        } else {
            (size - 1) / kloc_mem::PAGE_SIZE
        };
        let mut issued = 0;
        for idx in start..(start + window).min(max_idx + 1) {
            let present = self
                .vfs
                .inode(ino)
                .ok_or(KernelError::BadInode(ino))?
                .cache
                .get(idx)
                .is_some();
            if present {
                continue;
            }
            let frame = self.insert_cache_page(ctx, ino, idx, false, true)?;
            self.disk_retry(ctx, DiskOp::Read)?;
            self.disk
                .submit_read(ctx.mem.now(), kloc_mem::PAGE_SIZE, IoPattern::Sequential);
            self.prefetched.insert(frame);
            issued += 1;
        }
        if issued > 0 {
            self.readahead.record_issued(issued);
            kloc_trace::with_counters(|c| c.readahead_pages += issued);
        }
        Ok(())
    }

    /// Flushes `fd`'s dirty pages and commits the journal, waiting for
    /// the device.
    pub fn fsync(&mut self, ctx: &mut Ctx<'_>, fd: Fd) -> Result<(), KernelError> {
        self.stats.on_syscall(Syscall::Fsync);
        ctx.mem.charge(self.params.syscall_base);
        let _attrib = kloc_trace::scope("fsync");
        self.crash_check(ctx)?;
        let (ino, _) = self.resolve(fd)?;
        let dirty = {
            let inode = self.vfs.inode(ino).ok_or(KernelError::BadInode(ino))?;
            inode.cache.dirty_indices()
        };
        self.flush_pages(ctx, ino, &dirty)?;
        self.commit_journal(ctx)?;
        self.disk_retry(ctx, DiskOp::Fsync)?;
        let stall = self.disk.drain(ctx.mem.now());
        ctx.mem.charge(stall);
        // The drain succeeded: everything this inode submitted plus
        // every complete journal record becomes a durability promise
        // the crash checker enforces after any later crash.
        for (&key, &version) in self.durable.pages.range((ino, 0)..=(ino, u64::MAX)) {
            let slot = self.promise.pages.entry(key).or_insert(0);
            *slot = (*slot).max(version);
        }
        self.promise.committed_records = self
            .durable
            .journal
            .iter()
            .filter(|r| r.is_complete())
            .count();
        Ok(())
    }

    /// Writes back up to `max_pages` from the global dirty list
    /// (background writeback).
    pub fn writeback(&mut self, ctx: &mut Ctx<'_>, max_pages: usize) -> Result<(), KernelError> {
        let mut batch: Vec<(InodeId, u64)> = Vec::new();
        while batch.len() < max_pages {
            let Some((ino, idx)) = self.dirty_list.pop_front() else {
                break;
            };
            let still_dirty = self
                .vfs
                .inode(ino)
                .and_then(|i| i.cache.get(idx))
                .map(|p| p.dirty)
                .unwrap_or(false);
            if still_dirty {
                batch.push((ino, idx));
            }
        }
        // Group by inode for flushing. BTreeMap: flush order must be
        // deterministic (inode order), or per-run counters drift between
        // identically-seeded runs.
        let mut by_inode: BTreeMap<InodeId, Vec<u64>> = BTreeMap::new();
        for (ino, idx) in batch {
            by_inode.entry(ino).or_default().push(idx);
        }
        for (ino, idxs) in by_inode {
            self.flush_pages(ctx, ino, &idxs)?;
        }
        Ok(())
    }

    /// Writes back the given dirty pages of one inode: reads the page
    /// data (DMA), allocates bio/blk-mq objects per batch, submits the
    /// write, and marks pages clean.
    fn flush_pages(
        &mut self,
        ctx: &mut Ctx<'_>,
        ino: InodeId,
        idxs: &[u64],
    ) -> Result<(), KernelError> {
        if idxs.is_empty() {
            return Ok(());
        }
        let _attrib = kloc_trace::scope("writeback");
        let mut flushed = 0usize;
        let mut dma = Vec::new();
        for chunk in idxs.chunks(self.params.pages_per_bio.max(1)) {
            let mut pages_in_bio = 0;
            dma.clear();
            for &idx in chunk {
                let page = {
                    let inode = self.vfs.inode(ino).ok_or(KernelError::BadInode(ino))?;
                    inode.cache.get(idx).copied()
                };
                let Some(page) = page else { continue };
                if !page.dirty {
                    continue;
                }
                // DMA read of the page from wherever it lives: this is
                // where dirty pages stranded in slow memory hurt. No KLOC
                // hook fires between the pages of one bio, so the reads
                // of a chunk form one batchable run.
                if self.params.batch_accesses {
                    dma.push(kloc_mem::AccessOp::read(page.frame, kloc_mem::PAGE_SIZE));
                } else {
                    ctx.mem.read(page.frame, kloc_mem::PAGE_SIZE);
                }
                let inode = self.vfs.inode_mut(ino).ok_or(KernelError::BadInode(ino))?;
                inode.cache.mark_clean(idx);
                // Submitted pages are durable at this version (the
                // device queue drains in bounded time; only journal
                // commits can tear).
                self.durable.record_page(ino, idx, page.version);
                self.dirty_pages -= 1;
                pages_in_bio += 1;
            }
            if pages_in_bio == 0 {
                continue;
            }
            if !dma.is_empty() {
                ctx.mem.access_batch(None, &dma);
            }
            let bio = self.alloc_object(ctx, KernelObjectType::Bio, Some(ino), false)?;
            self.access_object(ctx, bio, KernelObjectType::Bio.size(), true)?;
            let req = self.alloc_object(ctx, KernelObjectType::BlkMqRequest, Some(ino), false)?;
            self.access_object(ctx, req, KernelObjectType::BlkMqRequest.size(), true)?;
            self.disk_retry(ctx, DiskOp::Write)?;
            self.disk.submit_write(
                ctx.mem.now(),
                pages_in_bio as u64 * kloc_mem::PAGE_SIZE,
                IoPattern::Sequential,
            );
            self.block.record_dispatch(pages_in_bio, 1);
            self.free_object(ctx, req)?;
            self.free_object(ctx, bio)?;
            flushed += pages_in_bio;
        }
        self.stats.writeback_pages += flushed as u64;
        if flushed > 0 {
            let t = ctx.mem.now().as_nanos();
            kloc_trace::emit(|| kloc_trace::Event::Writeback {
                t,
                ino: ino.0,
                pages: flushed as u64,
            });
        }
        Ok(())
    }

    /// Enforces the page-cache budget: reclaims clean cold pages
    /// (writing back dirty ones first), oldest-first, charging LRU scan
    /// costs.
    ///
    /// While QoS-ordered reclaim is active
    /// ([`KernelParams::qos_reclaim`], or any tier fault window open)
    /// and more than one QoS class holds cached pages, reclaim preempts
    /// the most-scavenger class first: candidates owned by a stricter
    /// class are rescued back to the active list untouched, so a
    /// Guaranteed tenant's hot set survives as long as any lower class
    /// still holds pages (DESIGN.md §13). The `guard` bound holds
    /// either way — degraded reclaim may leave the cache over budget
    /// for a pass rather than touch protected pages.
    fn shrink_cache(&mut self, ctx: &mut Ctx<'_>) -> Result<(), KernelError> {
        let _attrib = kloc_trace::scope("reclaim");
        let qos_gate = self.params.qos_reclaim || ctx.mem.tier_fault_active();
        let mut guard = 0;
        while self.cache_pages > self.params.page_cache_budget && guard < 64 {
            guard += 1;
            let out = self.cache_lru.scan_inactive(32);
            ctx.mem
                .charge(self.params.lru_scan_per_page * out.scanned as u64);
            if out.scanned == 0 {
                // Everything is active: age some pages and retry.
                let target = (self.cache_lru.active_len() / 4).max(32);
                self.cache_lru.age_active(target);
                continue;
            }
            for frame in out.evict {
                let Some((ino, idx)) = self.cache_index.get(frame) else {
                    continue;
                };
                let owner = self.vfs.inode(ino).map(|i| i.owner).unwrap_or_default();
                let mut preemption = None;
                if qos_gate {
                    // Recomputed per eviction: draining one class can
                    // move the floor to the next.
                    let (floor, multi) = self.reclaim_floor();
                    if multi {
                        if floor != Some(self.qos_of(owner)) {
                            // Protected: a lower class still holds
                            // pages. Rescue, never evict.
                            self.cache_lru.insert(frame, List::Active);
                            continue;
                        }
                        preemption = Some(self.qos_of(owner));
                    }
                }
                let dirty = self
                    .vfs
                    .inode(ino)
                    .and_then(|i| i.cache.get(idx))
                    .map(|p| p.dirty)
                    .unwrap_or(false);
                if dirty {
                    self.flush_pages(ctx, ino, &[idx])?;
                }
                let t = ctx.mem.now().as_nanos();
                kloc_trace::emit(|| kloc_trace::Event::PcEvict {
                    t,
                    ino: ino.0,
                    idx,
                    dirty: u64::from(dirty),
                });
                // Cross-tenant attribution: the tenant driving this
                // allocation evicted a page owned by another tenant.
                // Never fires in single-tenant runs (both sides are
                // TenantId::DEFAULT), so existing traces are unchanged.
                if owner != ctx.tenant {
                    self.tenants.stats_mut(ctx.tenant).cross_evictions_caused += 1;
                    self.tenants.stats_mut(owner).cross_evictions_suffered += 1;
                    kloc_trace::emit(|| kloc_trace::Event::TenantEvict {
                        t,
                        evictor: u64::from(ctx.tenant.0),
                        victim: u64::from(owner.0),
                        ino: ino.0,
                        idx,
                    });
                }
                if let Some(qos) = preemption {
                    // QoS-ordered reclaim chose this page because its
                    // owner is the current floor class.
                    self.tenants.stats_mut(owner).preempted += 1;
                    kloc_trace::emit(|| kloc_trace::Event::Degrade {
                        t,
                        tenant: u64::from(owner.0),
                        qos: qos.to_string(),
                        action: "reclaim".to_string(),
                        pages: 1,
                    });
                }
                self.drop_cache_page(ctx, ino, idx)?;
                self.stats.reclaimed_pages += 1;
            }
        }
        Ok(())
    }

    /// Removes one page from an inode's cache, freeing the page object
    /// and any emptied radix node.
    fn drop_cache_page(
        &mut self,
        ctx: &mut Ctx<'_>,
        ino: InodeId,
        idx: u64,
    ) -> Result<(), KernelError> {
        let (removed, owner) = {
            let inode = self.vfs.inode_mut(ino).ok_or(KernelError::BadInode(ino))?;
            let was_dirty = inode.cache.get(idx).map(|p| p.dirty).unwrap_or(false);
            if was_dirty {
                self.dirty_pages -= 1;
            }
            (inode.cache.remove(idx), inode.owner)
        };
        let Some(removed) = removed else {
            return Ok(());
        };
        self.tenants.note_pc_removed(owner, 1);
        self.free_object(ctx, removed.page.obj)?;
        if let Some(node) = removed.freed_node {
            self.free_object(ctx, node)?;
        }
        Ok(())
    }

    /// Closes a descriptor. When the last handle drops, the inode goes
    /// inactive (firing `on_inode_close`) or is destroyed if unlinked.
    pub fn close(&mut self, ctx: &mut Ctx<'_>, fd: Fd) -> Result<(), KernelError> {
        self.stats.on_syscall(Syscall::Close);
        ctx.mem.charge(self.params.syscall_base);
        let _attrib = kloc_trace::scope("close");
        self.crash_check(ctx)?;
        let of = self.vfs.close_fd(fd).ok_or(KernelError::BadFd(fd))?;
        self.free_object(ctx, of.file_obj)?;
        let ino = of.inode;
        let (open_count, nlink, kind) = {
            let inode = self.vfs.inode_mut(ino).ok_or(KernelError::BadInode(ino))?;
            inode.open_count -= 1;
            (inode.open_count, inode.nlink, inode.kind)
        };
        if open_count == 0 {
            self.readahead.forget(ino);
            if nlink == 0 || kind == InodeKind::Socket {
                self.destroy_inode(ctx, ino)?;
            } else {
                ctx.hooks.on_inode_close(ino, ctx.mem);
            }
        }
        Ok(())
    }

    /// Unlinks a path. The inode is destroyed once no handles remain.
    pub fn unlink(&mut self, ctx: &mut Ctx<'_>, path: &str) -> Result<(), KernelError> {
        self.stats.on_syscall(Syscall::Unlink);
        ctx.mem.charge(self.params.syscall_base);
        let _attrib = kloc_trace::scope("unlink");
        self.crash_check(ctx)?;
        let ino = self
            .vfs
            .unbind_path(path)
            .ok_or_else(|| KernelError::NoEntry(path.to_owned()))?;
        self.journal_add(ctx, Some(ino), MetaUpdate::Unlink)?;
        let open_count = {
            let inode = self.vfs.inode_mut(ino).ok_or(KernelError::BadInode(ino))?;
            inode.nlink = 0;
            inode.open_count
        };
        if open_count == 0 {
            self.destroy_inode(ctx, ino)?;
        }
        Ok(())
    }

    /// Frees every object belonging to an inode (paper §3.2: deleted
    /// files' objects are *deallocated*, never migrated).
    fn destroy_inode(&mut self, ctx: &mut Ctx<'_>, ino: InodeId) -> Result<(), KernelError> {
        ctx.hooks.on_inode_destroy(ino, ctx.mem);
        let mut inode = self
            .vfs
            .remove_inode(ino)
            .ok_or(KernelError::BadInode(ino))?;
        self.dirty_pages -= inode.cache.dirty_pages();
        let cached = inode.cache.len() as u64;
        if cached > 0 {
            self.tenants.note_pc_removed(inode.owner, cached);
        }
        let (pages, nodes) = inode.cache.take_all();
        for p in pages {
            self.free_object(ctx, p.obj)?;
        }
        for n in nodes {
            self.free_object(ctx, n)?;
        }
        for e in inode.extents.drain() {
            self.free_object(ctx, e)?;
        }
        for packet in inode.rx.drain() {
            self.free_object(ctx, packet.skb)?;
            for d in packet.data {
                self.free_object(ctx, d)?;
            }
        }
        if let Some(d) = inode.dentry_obj {
            self.free_object(ctx, d)?;
        }
        if let Some(s) = inode.sock_obj {
            self.free_object(ctx, s)?;
        }
        self.free_object(ctx, inode.inode_obj)?;
        self.readahead.forget(ino);
        Ok(())
    }

    /// Creates a directory.
    ///
    /// # Errors
    /// [`KernelError::Exists`] if the path is taken.
    pub fn mkdir(&mut self, ctx: &mut Ctx<'_>, path: &str) -> Result<InodeId, KernelError> {
        self.stats.on_syscall(Syscall::Mkdir);
        ctx.mem.charge(self.params.syscall_base);
        let _attrib = kloc_trace::scope("mkdir");
        self.crash_check(ctx)?;
        if self.vfs.lookup_path(path).is_some() {
            return Err(KernelError::Exists(path.to_owned()));
        }
        let ino = self.vfs.next_inode_id();
        ctx.hooks.on_inode_create(ino, ctx.cpu, ctx.tenant, ctx.mem);
        let inode_obj = self.alloc_object(ctx, KernelObjectType::Inode, Some(ino), false)?;
        self.access_object(ctx, inode_obj, KernelObjectType::Inode.size(), true)?;
        let dentry_obj = self.alloc_object(ctx, KernelObjectType::Dentry, Some(ino), false)?;
        self.access_object(ctx, dentry_obj, KernelObjectType::Dentry.size(), true)?;
        self.journal_add(ctx, Some(ino), MetaUpdate::Create)?;
        let inode = Inode {
            id: ino,
            kind: InodeKind::Directory,
            owner: ctx.tenant,
            size: 0,
            nlink: 1,
            open_count: 0,
            inode_obj,
            dentry_obj: Some(dentry_obj),
            sock_obj: None,
            cache: PageCache::new(self.params.radix_fanout),
            extents: ExtentTree::new(self.params.extent_span),
            rx: RxQueue::new(),
            created_at: ctx.mem.now(),
            last_activity: ctx.mem.now(),
        };
        self.vfs.insert_inode(inode);
        self.vfs.bind_path(path, ino);
        // Directories are long-lived caches, not held open: mark the
        // knode inactive right away.
        ctx.hooks.on_inode_close(ino, ctx.mem);
        Ok(ino)
    }

    /// Lists a directory: allocates transient dir-buffer objects (one
    /// per `entries_per_buffer` entries), reads them, and frees them —
    /// the short-lived "dir buffers" of paper §3.3.
    ///
    /// # Errors
    /// [`KernelError::NoEntry`] if the path does not name a directory.
    pub fn readdir(
        &mut self,
        ctx: &mut Ctx<'_>,
        path: &str,
        entries: u64,
    ) -> Result<u64, KernelError> {
        self.stats.on_syscall(Syscall::Readdir);
        ctx.mem.charge(self.params.syscall_base);
        let _attrib = kloc_trace::scope("readdir");
        self.crash_check(ctx)?;
        let ino = self
            .vfs
            .lookup_path(path)
            .ok_or_else(|| KernelError::NoEntry(path.to_owned()))?;
        {
            let inode = self.vfs.inode(ino).ok_or(KernelError::BadInode(ino))?;
            if inode.kind != InodeKind::Directory {
                return Err(KernelError::WrongKind(ino));
            }
        }
        let inode_obj = self
            .vfs
            .inode(ino)
            .ok_or(KernelError::BadInode(ino))?
            .inode_obj;
        self.access_object(ctx, inode_obj, KernelObjectType::Inode.size(), false)?;
        // ~6 directory entries fit one 680 B buffer.
        let buffers = entries.div_ceil(6).max(1);
        for _ in 0..buffers {
            let b = self.alloc_object(ctx, KernelObjectType::DirBuffer, Some(ino), false)?;
            self.access_object(ctx, b, KernelObjectType::DirBuffer.size(), true)?;
            self.access_object(ctx, b, KernelObjectType::DirBuffer.size(), false)?;
            self.free_object(ctx, b)?;
        }
        self.vfs
            .inode_mut(ino)
            .ok_or(KernelError::BadInode(ino))?
            .last_activity = ctx.mem.now();
        Ok(entries)
    }

    // ------------------------------------------------------------------
    // Network syscalls
    // ------------------------------------------------------------------

    /// Creates a socket (with its sockfs inode).
    pub fn socket(&mut self, ctx: &mut Ctx<'_>) -> Result<Fd, KernelError> {
        self.stats.on_syscall(Syscall::Socket);
        ctx.mem.charge(self.params.syscall_base);
        let _attrib = kloc_trace::scope("socket");
        self.crash_check(ctx)?;
        let ino = self.vfs.next_inode_id();
        ctx.hooks.on_inode_create(ino, ctx.cpu, ctx.tenant, ctx.mem);
        let inode_obj = self.alloc_object(ctx, KernelObjectType::Inode, Some(ino), false)?;
        self.access_object(ctx, inode_obj, KernelObjectType::Inode.size(), true)?;
        let sock_obj = self.alloc_object(ctx, KernelObjectType::Sock, Some(ino), false)?;
        self.access_object(ctx, sock_obj, KernelObjectType::Sock.size(), true)?;
        let inode = Inode {
            id: ino,
            kind: InodeKind::Socket,
            owner: ctx.tenant,
            size: 0,
            nlink: 1,
            open_count: 1,
            inode_obj,
            dentry_obj: None,
            sock_obj: Some(sock_obj),
            cache: PageCache::new(self.params.radix_fanout),
            extents: ExtentTree::new(self.params.extent_span),
            rx: RxQueue::new(),
            created_at: ctx.mem.now(),
            last_activity: ctx.mem.now(),
        };
        self.vfs.insert_inode(inode);
        let file_obj = self.alloc_object(ctx, KernelObjectType::FileHandle, Some(ino), false)?;
        let fd = self.vfs.open_fd(ino, file_obj);
        ctx.hooks.on_inode_open(ino, ctx.cpu, ctx.mem);
        Ok(fd)
    }

    /// Sends `bytes` on a socket (egress path: skbuff + data buffer per
    /// packet, freed after transmission).
    pub fn send(&mut self, ctx: &mut Ctx<'_>, fd: Fd, bytes: u64) -> Result<u64, KernelError> {
        self.stats.on_syscall(Syscall::Send);
        ctx.mem.charge(self.params.syscall_base);
        let _attrib = kloc_trace::scope("send");
        self.crash_check(ctx)?;
        let (ino, _) = self.resolve(fd)?;
        let (kind, sock_obj) = {
            let inode = self.vfs.inode(ino).ok_or(KernelError::BadInode(ino))?;
            (inode.kind, inode.sock_obj)
        };
        if kind != InodeKind::Socket {
            return Err(KernelError::WrongKind(ino));
        }
        let sock_obj = sock_obj.ok_or(KernelError::WrongKind(ino))?;
        self.access_object(ctx, sock_obj, 128, true)?;

        let packets = bytes.div_ceil(self.params.packet_bytes).max(1);
        for p in 0..packets {
            let payload = if p == packets - 1 {
                bytes - p * self.params.packet_bytes
            } else {
                self.params.packet_bytes
            };
            let skb = self.alloc_object(ctx, KernelObjectType::SkBuff, Some(ino), false)?;
            self.access_object(ctx, skb, KernelObjectType::SkBuff.size(), true)?;
            let data = self.alloc_object(ctx, KernelObjectType::SkBuffData, Some(ino), false)?;
            self.access_object(ctx, data, payload.max(1), true)?;
            ctx.mem.charge(
                self.params.net_tcp_cpu + self.params.net_ip_cpu + self.params.net_driver_cpu,
            );
            // Transmitted: egress buffers are freed immediately.
            self.free_object(ctx, data)?;
            self.free_object(ctx, skb)?;
            self.net_stats.tx_packets += 1;
        }
        self.net_stats.tx_bytes += bytes;
        self.tenants.stats_mut(ctx.tenant).tx_bytes += bytes;
        self.vfs
            .inode_mut(ino)
            .ok_or(KernelError::BadInode(ino))?
            .last_activity = ctx.mem.now();
        Ok(bytes)
    }

    /// Delivers `bytes` of ingress traffic to a socket (the asynchronous
    /// receive path: driver RX buffer + skbuff, demuxed up the stack and
    /// queued until [`Kernel::recv`]).
    pub fn deliver(&mut self, ctx: &mut Ctx<'_>, fd: Fd, bytes: u64) -> Result<(), KernelError> {
        let _attrib = kloc_trace::scope("deliver");
        let (ino, _) = self.resolve(fd)?;
        {
            let inode = self.vfs.inode(ino).ok_or(KernelError::BadInode(ino))?;
            if inode.kind != InodeKind::Socket {
                return Err(KernelError::WrongKind(ino));
            }
        }
        let early = ctx.hooks.early_socket_demux();
        let packets = bytes.div_ceil(self.params.packet_bytes).max(1);
        for p in 0..packets {
            let payload = if p == packets - 1 {
                bytes - p * self.params.packet_bytes
            } else {
                self.params.packet_bytes
            };
            // Driver: allocate the RX buffer and skbuff. With early demux
            // the socket is known here; otherwise it is discovered at the
            // TCP layer and associated late.
            let alloc_inode = if early { Some(ino) } else { None };
            ctx.mem.charge(self.params.net_driver_cpu);
            let rx = self.alloc_object(ctx, KernelObjectType::RxBuf, alloc_inode, false)?;
            // DMA fill: the NIC writes a whole ring buffer page.
            ctx.mem.write(
                self.objects.get(rx).expect("just allocated").frame, // lint: unwrap-ok — alloc_object just created it
                kloc_mem::PAGE_SIZE,
            );
            let skb = self.alloc_object(ctx, KernelObjectType::SkBuff, alloc_inode, false)?;
            self.access_object(ctx, skb, KernelObjectType::SkBuff.size(), true)?;

            // IP + TCP layers.
            ctx.mem.charge(self.params.net_ip_cpu);
            let tcp_cpu = if early {
                self.params
                    .net_tcp_cpu
                    .saturating_sub(self.params.net_early_demux_saving)
            } else {
                self.params.net_tcp_cpu
            };
            ctx.mem.charge(tcp_cpu);
            if early {
                self.net_stats.early_demuxed += 1;
            } else {
                // Late demux: associate the objects with the socket now.
                self.associate_object(ctx, rx, ino)?;
                self.associate_object(ctx, skb, ino)?;
            }

            // Queue on the socket.
            let sock_obj = self
                .vfs
                .inode(ino)
                .ok_or(KernelError::BadInode(ino))?
                .sock_obj
                .ok_or(KernelError::WrongKind(ino))?;
            self.access_object(ctx, sock_obj, 128, true)?;
            self.vfs
                .inode_mut(ino)
                .ok_or(KernelError::BadInode(ino))?
                .rx
                .push(Packet {
                    skb,
                    data: vec![rx],
                    bytes: payload,
                });
            self.net_stats.rx_packets += 1;
        }
        self.net_stats.rx_bytes += bytes;
        Ok(())
    }

    /// Receives up to `max_bytes` from a socket's queue.
    ///
    /// # Errors
    /// [`KernelError::WouldBlock`] when nothing is queued.
    pub fn recv(&mut self, ctx: &mut Ctx<'_>, fd: Fd, max_bytes: u64) -> Result<u64, KernelError> {
        self.stats.on_syscall(Syscall::Recv);
        ctx.mem.charge(self.params.syscall_base);
        let _attrib = kloc_trace::scope("recv");
        self.crash_check(ctx)?;
        let (ino, _) = self.resolve(fd)?;
        {
            let inode = self.vfs.inode(ino).ok_or(KernelError::BadInode(ino))?;
            if inode.kind != InodeKind::Socket {
                return Err(KernelError::WrongKind(ino));
            }
            if inode.rx.is_empty() {
                return Err(KernelError::WouldBlock(fd));
            }
        }
        let mut got = 0;
        while got < max_bytes {
            let packet = {
                let inode = self.vfs.inode_mut(ino).ok_or(KernelError::BadInode(ino))?;
                inode.rx.pop()
            };
            let Some(packet) = packet else { break };
            self.access_object(ctx, packet.skb, KernelObjectType::SkBuff.size(), false)?;
            for &d in &packet.data {
                // Copy to userspace: read the kernel buffer.
                self.access_object(ctx, d, packet.bytes.max(1), false)?;
            }
            got += packet.bytes;
            self.free_object(ctx, packet.skb)?;
            for d in packet.data {
                self.free_object(ctx, d)?;
            }
        }
        self.tenants.stats_mut(ctx.tenant).rx_bytes += got;
        self.vfs
            .inode_mut(ino)
            .ok_or(KernelError::BadInode(ino))?
            .last_activity = ctx.mem.now();
        Ok(got)
    }

    // ------------------------------------------------------------------
    // Application memory
    // ------------------------------------------------------------------

    /// Allocates one application (anonymous) page — a transparent huge
    /// page when [`KernelParams::thp_app`] is set.
    pub fn alloc_app_page(&mut self, ctx: &mut Ctx<'_>) -> Result<FrameId, KernelError> {
        ctx.mem.charge(self.params.page_alloc_cpu);
        let kind = if self.params.thp_app {
            PageKind::AppHuge
        } else {
            PageKind::AppData
        };
        let req = PageRequest {
            kind,
            ty: None,
            inode: None,
            readahead: false,
            cpu: ctx.cpu,
            tenant: ctx.tenant,
        };
        let placement = ctx.hooks.place_page(&req, ctx.mem);
        let frame = ctx.mem.allocate_preferring(&placement.preference, kind)?;
        if ctx.tenant != TenantId::DEFAULT {
            ctx.mem.set_frame_tenant(frame, ctx.tenant)?;
        }
        self.stats.app_pages_allocated += 1;
        ctx.hooks.on_app_page_alloc(frame, ctx.cpu, ctx.mem);
        Ok(frame)
    }

    /// Frees an application page.
    pub fn free_app_page(&mut self, ctx: &mut Ctx<'_>, frame: FrameId) -> Result<(), KernelError> {
        ctx.mem.charge(self.params.free_cpu);
        ctx.hooks.on_page_free(frame, ctx.mem);
        ctx.mem.free(frame)?;
        self.stats.app_pages_freed += 1;
        Ok(())
    }

    /// Application access to its own page.
    pub fn app_access(&mut self, ctx: &mut Ctx<'_>, frame: FrameId, bytes: u64, write: bool) {
        if write {
            ctx.mem.write_from(ctx.socket, frame, bytes);
        } else {
            ctx.mem.read_from(ctx.socket, frame, bytes);
        }
        ctx.hooks.on_app_page_access(frame, ctx.cpu, ctx.mem);
    }
}

#[cfg(feature = "ksan")]
impl Kernel {
    /// Audits the kernel's cross-structure invariants: the VFS tables,
    /// both packed allocators, and — the tentpole — three-way agreement
    /// between the per-inode page caches, the frame -> (inode, index)
    /// reverse map, the page-cache LRU, and frame liveness in `mem`.
    /// Observation only.
    pub fn ksan_audit(
        &self,
        mem: &kloc_mem::MemorySystem,
        out: &mut Vec<kloc_mem::ksan::Violation>,
    ) {
        use kloc_mem::ksan::Violation;
        self.vfs.ksan_audit(out);
        self.slab.ksan_audit(mem, out);
        self.kvma.ksan_audit(mem, out);

        let mut cached = 0u64;
        let mut dirty = 0u64;
        let mut by_owner: Vec<u64> = Vec::new();
        for inode in self.vfs.inodes() {
            cached += inode.cache.len() as u64;
            dirty += inode.cache.dirty_pages();
            let o = inode.owner.index();
            if o >= by_owner.len() {
                by_owner.resize(o + 1, 0);
            }
            by_owner[o] += inode.cache.len() as u64;
            for (idx, page) in inode.cache.iter() {
                let object = format!("{} page {idx} ({})", inode.id, page.frame);
                if self.cache_index.get(page.frame) != Some((inode.id, idx)) {
                    out.push(Violation::new(
                        "PageCache <-> Kernel.cache_index",
                        object.clone(),
                        "the reverse map points every cached frame at its page",
                        format!("({}, {idx})", inode.id),
                        format!("{:?}", self.cache_index.get(page.frame)),
                    ));
                }
                if !self.cache_lru.contains(page.frame) {
                    out.push(Violation::new(
                        "PageCache <-> Kernel.cache_lru",
                        object.clone(),
                        "every cached page is tracked by the page LRU",
                        "tracked".to_owned(),
                        "untracked".to_owned(),
                    ));
                }
                if !mem.is_live(page.frame) {
                    out.push(Violation::new(
                        "PageCache <-> FrameTable",
                        object.clone(),
                        "every cached page's frame is live",
                        "live".to_owned(),
                        "freed".to_owned(),
                    ));
                }
                if page.dirty && !self.dirty_list.contains(&(inode.id, idx)) {
                    out.push(Violation::new(
                        "PageCache.dirty <-> Kernel.dirty_list",
                        object,
                        "every dirty page is queued for writeback",
                        "queued".to_owned(),
                        "missing from dirty_list".to_owned(),
                    ));
                }
            }
        }
        if cached != self.cache_pages {
            out.push(Violation::new(
                "Kernel.cache_pages <-> PageCache",
                "page cache",
                "the budget counter equals the pages cached across inodes",
                format!("{cached} cached pages"),
                format!("cache_pages = {}", self.cache_pages),
            ));
        }
        if dirty != self.dirty_pages {
            out.push(Violation::new(
                "Kernel.dirty_pages <-> PageCache",
                "page cache",
                "the dirty counter equals the dirty pages across inodes",
                format!("{dirty} dirty pages"),
                format!("dirty_pages = {}", self.dirty_pages),
            ));
        }
        if self.cache_lru.len() as u64 != cached {
            out.push(Violation::new(
                "Kernel.cache_lru <-> PageCache",
                "page cache",
                "the LRU tracks exactly the cached pages",
                format!("{cached} cached pages"),
                format!("{} LRU entries", self.cache_lru.len()),
            ));
        }
        self.cache_lru.ksan_audit(out);
        // Per-tenant residency: each tenant's pc_resident counter equals
        // the cached pages of the inodes it owns.
        for i in 0..by_owner.len().max(self.tenants.stats_len()) {
            let id = TenantId(i as u16);
            let counted = by_owner.get(i).copied().unwrap_or(0);
            let stored = self.tenants.stats(id).pc_resident;
            if counted != stored {
                out.push(Violation::new(
                    "TenantTable.pc_resident <-> PageCache",
                    format!("{id}"),
                    "per-tenant residency equals the cached pages of owned inodes",
                    format!("{counted} cached pages"),
                    format!("pc_resident = {stored}"),
                ));
            }
        }
        // Reverse direction: every reverse-map entry round-trips into
        // the owning inode's page cache.
        for (frame, ino, idx) in self.cache_index.iter() {
            let hit = self
                .vfs
                .inode(ino)
                .and_then(|inode| inode.cache.get(idx))
                .is_some_and(|page| page.frame == frame);
            if !hit {
                out.push(Violation::new(
                    "Kernel.cache_index <-> PageCache",
                    format!("{ino} page {idx} ({frame})"),
                    "every reverse-map entry names a cached page",
                    format!("{frame} cached at ({ino}, {idx})"),
                    "no such cached page".to_owned(),
                ));
            }
        }
    }

    /// Corruption hook for sanitizer self-tests: drops the reverse-map
    /// entry of the first cached frame while the page stays cached.
    #[doc(hidden)]
    pub fn ksan_break_cache_index(&mut self) {
        let first = self.cache_index.iter().next();
        if let Some((frame, _, _)) = first {
            self.cache_index.remove(frame);
        }
    }

    /// Corruption hook for sanitizer self-tests: unlinks the first
    /// cached frame from the page LRU while the page stays cached.
    #[doc(hidden)]
    pub fn ksan_break_cache_lru(&mut self) {
        let frame = self.cache_index.iter().map(|(frame, _, _)| frame).next();
        if let Some(frame) = frame {
            self.cache_lru.remove(frame);
        }
    }

    /// Corruption hook for sanitizer self-tests: relocates one cached
    /// frame onto the wrong LRU shard.
    #[doc(hidden)]
    pub fn ksan_break_lru_homing(&mut self) {
        self.cache_lru.ksan_break_homing();
    }
}

/// frame -> (inode, page index) reverse map for cached file pages,
/// direct-mapped by [`FrameId::slot`] and sharded by the slot's low bits
/// (shard = `slot & mask`, intra-shard index = `slot >> shard_bits` — the
/// same homing as every other sharded hot-path structure). Entries store
/// the full frame id so a slot recycled by the frame table (fresh
/// generation) misses instead of aliasing; the kernel removes entries on
/// page free, so stale occupants only arise transiently and are
/// overwritten on insert.
#[derive(Debug)]
struct CacheIndex {
    shard_bits: u32,
    mask: u32,
    shards: Vec<Vec<Option<(FrameId, InodeId, u64)>>>,
}

impl CacheIndex {
    fn new(shards: u32) -> Self {
        let count = shards.max(1).next_power_of_two();
        CacheIndex {
            shard_bits: count.trailing_zeros(),
            mask: count - 1,
            shards: (0..count).map(|_| Vec::new()).collect(),
        }
    }

    #[inline]
    fn place(&self, frame: FrameId) -> (usize, usize) {
        let slot = frame.slot();
        (
            (slot & self.mask) as usize,
            (slot >> self.shard_bits) as usize,
        )
    }

    fn get(&self, frame: FrameId) -> Option<(InodeId, u64)> {
        let (shard, i) = self.place(frame);
        match self.shards[shard].get(i) {
            Some(&Some((f, ino, idx))) if f == frame => Some((ino, idx)),
            _ => None,
        }
    }

    fn insert(&mut self, frame: FrameId, ino: InodeId, idx: u64) {
        let (shard, i) = self.place(frame);
        let slots = &mut self.shards[shard];
        if i >= slots.len() {
            slots.resize(i + 1, None);
        }
        slots[i] = Some((frame, ino, idx));
    }

    /// Removes `frame`'s entry; returns whether it was present.
    fn remove(&mut self, frame: FrameId) -> bool {
        let (shard, i) = self.place(frame);
        match self.shards[shard].get_mut(i) {
            Some(slot @ &mut Some((f, _, _))) if f == frame => {
                *slot = None;
                true
            }
            _ => false,
        }
    }

    /// Iterates entries in global slot order (ascending `FrameId::slot`),
    /// independent of the shard count.
    #[cfg(feature = "ksan")]
    fn iter(&self) -> impl Iterator<Item = (FrameId, InodeId, u64)> + '_ {
        let depth = self.shards.iter().map(Vec::len).max().unwrap_or(0);
        (0..depth).flat_map(move |i| {
            self.shards
                .iter()
                .filter_map(move |slots| slots.get(i).copied().flatten())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NullHooks;
    use kloc_mem::{MemorySystem, Nanos, TierId};

    fn setup() -> (MemorySystem, NullHooks, Kernel) {
        (
            MemorySystem::two_tier(1024 * kloc_mem::PAGE_SIZE, 8),
            NullHooks::fast_first(),
            Kernel::new(KernelParams::default()),
        )
    }

    #[test]
    fn create_allocates_fig3b_objects() {
        let (mut mem, mut hooks, mut k) = setup();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        k.create(&mut ctx, "/f").unwrap();
        let s = k.stats();
        assert_eq!(s.ty(KernelObjectType::Inode).allocated, 1);
        assert_eq!(s.ty(KernelObjectType::Dentry).allocated, 1);
        assert_eq!(s.ty(KernelObjectType::JournalHead).allocated, 1);
        assert_eq!(s.ty(KernelObjectType::FileHandle).allocated, 1);
        assert_eq!(k.vfs().inode_count(), 1);
        assert_eq!(k.vfs().open_fds(), 1);
    }

    #[test]
    fn create_existing_path_fails() {
        let (mut mem, mut hooks, mut k) = setup();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        k.create(&mut ctx, "/f").unwrap();
        assert!(matches!(
            k.create(&mut ctx, "/f"),
            Err(KernelError::Exists(_))
        ));
    }

    #[test]
    fn write_populates_page_cache_and_extents() {
        let (mut mem, mut hooks, mut k) = setup();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let fd = k.create(&mut ctx, "/f").unwrap();
        k.write(&mut ctx, fd, 0, 3 * 4096).unwrap();
        assert_eq!(k.cache_pages(), 3);
        assert_eq!(k.dirty_pages(), 3);
        assert_eq!(k.stats().ty(KernelObjectType::PageCache).allocated, 3);
        assert_eq!(k.stats().ty(KernelObjectType::RadixNode).allocated, 1);
        assert_eq!(k.stats().ty(KernelObjectType::Extent).allocated, 1);
        let ino = k.vfs().fd(fd).unwrap().inode;
        assert_eq!(k.vfs().inode(ino).unwrap().size, 3 * 4096);
    }

    #[test]
    fn rewrite_hits_cache() {
        let (mut mem, mut hooks, mut k) = setup();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let fd = k.create(&mut ctx, "/f").unwrap();
        k.write(&mut ctx, fd, 0, 4096).unwrap();
        let misses = k.stats().cache_misses;
        k.write(&mut ctx, fd, 0, 4096).unwrap();
        assert_eq!(k.stats().cache_misses, misses, "rewrite should hit");
        assert!(k.stats().cache_hits > 0);
        assert_eq!(k.cache_pages(), 1);
    }

    #[test]
    fn read_after_write_hits_cache_and_clamps() {
        let (mut mem, mut hooks, mut k) = setup();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let fd = k.create(&mut ctx, "/f").unwrap();
        k.write(&mut ctx, fd, 0, 8192).unwrap();
        let n = k.read(&mut ctx, fd, 0, 100_000).unwrap();
        assert_eq!(n, 8192, "read clamps to file size");
        assert_eq!(k.read(&mut ctx, fd, 9000, 10).unwrap(), 0);
    }

    #[test]
    fn fsync_cleans_dirty_pages_and_commits() {
        let (mut mem, mut hooks, mut k) = setup();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let fd = k.create(&mut ctx, "/f").unwrap();
        k.write(&mut ctx, fd, 0, 4 * 4096).unwrap();
        assert_eq!(k.dirty_pages(), 4);
        k.fsync(&mut ctx, fd).unwrap();
        assert_eq!(k.dirty_pages(), 0);
        assert_eq!(k.journal().pending(), 0);
        assert!(k.journal().commits() >= 1);
        assert!(k.stats().ty(KernelObjectType::Bio).allocated >= 1);
        assert!(k.stats().ty(KernelObjectType::JournalBlock).allocated >= 2);
        // Bios and journal blocks are short-lived.
        assert_eq!(k.stats().ty(KernelObjectType::Bio).live(), 0);
        assert_eq!(k.stats().ty(KernelObjectType::JournalBlock).live(), 0);
        // Device went idle.
        assert!(k.disk().busy_until() <= ctx.mem.now());
    }

    #[test]
    fn close_fires_inactive_unlink_destroys() {
        let (mut mem, mut hooks, mut k) = setup();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let fd = k.create(&mut ctx, "/f").unwrap();
        k.write(&mut ctx, fd, 0, 4096).unwrap();
        k.close(&mut ctx, fd).unwrap();
        // Inode still cached after close.
        assert_eq!(k.vfs().inode_count(), 1);
        assert_eq!(k.stats().ty(KernelObjectType::Inode).live(), 1);
        k.unlink(&mut ctx, "/f").unwrap();
        assert_eq!(k.vfs().inode_count(), 0);
        assert_eq!(k.stats().ty(KernelObjectType::Inode).live(), 0);
        assert_eq!(k.stats().ty(KernelObjectType::PageCache).live(), 0);
        assert_eq!(k.stats().ty(KernelObjectType::Dentry).live(), 0);
        assert_eq!(k.cache_pages(), 0);
        // Only the uncommitted journal heads remain; after a commit the
        // system holds no frames at all.
        k.commit_journal(&mut ctx).unwrap();
        assert_eq!(ctx.mem.live_frames(), 0, "no leaked frames");
    }

    #[test]
    fn unlink_while_open_defers_destroy() {
        let (mut mem, mut hooks, mut k) = setup();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let fd = k.create(&mut ctx, "/f").unwrap();
        k.unlink(&mut ctx, "/f").unwrap();
        assert_eq!(k.vfs().inode_count(), 1, "still open");
        k.close(&mut ctx, fd).unwrap();
        assert_eq!(k.vfs().inode_count(), 0);
    }

    #[test]
    fn reopen_uses_dentry_cache() {
        let (mut mem, mut hooks, mut k) = setup();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let fd = k.create(&mut ctx, "/f").unwrap();
        k.close(&mut ctx, fd).unwrap();
        let fd2 = k.open(&mut ctx, "/f").unwrap();
        assert_eq!(k.stats().dentry_hits, 1);
        assert_eq!(k.stats().dentry_misses, 0);
        k.close(&mut ctx, fd2).unwrap();
    }

    #[test]
    fn sequential_reads_trigger_readahead() {
        let (mut mem, mut hooks, mut k) = setup();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let fd = k.create(&mut ctx, "/f").unwrap();
        k.write(&mut ctx, fd, 0, 64 * 4096).unwrap();
        k.fsync(&mut ctx, fd).unwrap();
        k.close(&mut ctx, fd).unwrap();
        // Drop the cache so reads must fault.
        let ino = k.vfs().lookup_path("/f").unwrap();
        let idxs: Vec<u64> = k
            .vfs()
            .inode(ino)
            .unwrap()
            .cache
            .iter()
            .map(|(i, _)| i)
            .collect();
        let fd = k.open(&mut ctx, "/f").unwrap();
        for idx in idxs {
            k.drop_cache_page(&mut ctx, ino, idx).unwrap();
        }
        for i in 0..8u64 {
            k.read(&mut ctx, fd, i * 4096, 4096).unwrap();
        }
        assert!(k.readahead().stats().issued > 0, "prefetch should fire");
        assert!(
            k.readahead().stats().useful > 0,
            "prefetched pages get used"
        );
        k.close(&mut ctx, fd).unwrap();
    }

    #[test]
    fn cache_budget_reclaims() {
        let (mut mem, mut hooks, mut k) = setup();
        // Tiny budget: 8 pages.
        k.params.page_cache_budget = 8;
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let fd = k.create(&mut ctx, "/f").unwrap();
        k.write(&mut ctx, fd, 0, 32 * 4096).unwrap();
        assert!(
            k.cache_pages() <= 8,
            "budget enforced, got {}",
            k.cache_pages()
        );
        assert!(k.stats().reclaimed_pages > 0);
        k.close(&mut ctx, fd).unwrap();
    }

    #[test]
    fn socket_send_recv_round_trip() {
        let (mut mem, mut hooks, mut k) = setup();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let fd = k.socket(&mut ctx).unwrap();
        assert_eq!(k.stats().ty(KernelObjectType::Sock).allocated, 1);
        k.send(&mut ctx, fd, 3000).unwrap();
        assert_eq!(
            k.net_stats().tx_packets,
            3,
            "3000B at 1448B MTU = 3 packets"
        );
        assert_eq!(
            k.stats().ty(KernelObjectType::SkBuff).live(),
            0,
            "egress skbs freed"
        );

        assert!(matches!(
            k.recv(&mut ctx, fd, 100),
            Err(KernelError::WouldBlock(_))
        ));
        k.deliver(&mut ctx, fd, 3000).unwrap();
        assert_eq!(k.stats().ty(KernelObjectType::RxBuf).live(), 3);
        let got = k.recv(&mut ctx, fd, 10_000).unwrap();
        assert_eq!(got, 3000);
        assert_eq!(k.stats().ty(KernelObjectType::RxBuf).live(), 0);
        k.close(&mut ctx, fd).unwrap();
        assert_eq!(k.stats().ty(KernelObjectType::Sock).live(), 0);
        assert_eq!(k.vfs().inode_count(), 0, "sockets destroyed on close");
    }

    #[test]
    fn socket_close_frees_queued_packets() {
        let (mut mem, mut hooks, mut k) = setup();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let fd = k.socket(&mut ctx).unwrap();
        k.deliver(&mut ctx, fd, 5000).unwrap();
        k.close(&mut ctx, fd).unwrap();
        assert_eq!(k.stats().ty(KernelObjectType::SkBuff).live(), 0);
        assert_eq!(k.stats().ty(KernelObjectType::RxBuf).live(), 0);
        assert_eq!(ctx.mem.live_frames(), 0);
    }

    #[test]
    fn file_ops_on_socket_rejected() {
        let (mut mem, mut hooks, mut k) = setup();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let fd = k.socket(&mut ctx).unwrap();
        assert!(matches!(
            k.write(&mut ctx, fd, 0, 10),
            Err(KernelError::WrongKind(_))
        ));
        let ffd = k.create(&mut ctx, "/f").unwrap();
        assert!(matches!(
            k.send(&mut ctx, ffd, 10),
            Err(KernelError::WrongKind(_))
        ));
    }

    #[test]
    fn mkdir_and_readdir_allocate_dir_buffers() {
        let (mut mem, mut hooks, mut k) = setup();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let ino = k.mkdir(&mut ctx, "/dir").unwrap();
        assert_eq!(k.vfs().inode(ino).unwrap().kind, InodeKind::Directory);
        assert!(matches!(
            k.mkdir(&mut ctx, "/dir"),
            Err(KernelError::Exists(_))
        ));
        let n = k.readdir(&mut ctx, "/dir", 20).unwrap();
        assert_eq!(n, 20);
        let t = k.stats().ty(KernelObjectType::DirBuffer);
        assert_eq!(t.allocated, 4, "ceil(20/6) = 4 buffers");
        assert_eq!(t.live(), 0, "dir buffers are transient");
        // Directories reject file I/O.
        assert!(matches!(
            k.readdir(&mut ctx, "/nope", 5),
            Err(KernelError::NoEntry(_))
        ));
        let fd = k.create(&mut ctx, "/f").unwrap();
        k.close(&mut ctx, fd).unwrap();
        assert!(matches!(
            k.readdir(&mut ctx, "/f", 5),
            Err(KernelError::WrongKind(_))
        ));
    }

    #[test]
    fn app_pages_counted() {
        let (mut mem, mut hooks, mut k) = setup();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let f = k.alloc_app_page(&mut ctx).unwrap();
        k.app_access(&mut ctx, f, 4096, true);
        assert_eq!(k.stats().app_pages_allocated, 1);
        assert_eq!(ctx.mem.tier_of(f), TierId::FAST);
        k.free_app_page(&mut ctx, f).unwrap();
        assert_eq!(k.stats().app_pages_freed, 1);
    }

    #[test]
    fn slab_objects_have_short_lifetimes_vs_files() {
        // Reproduces the shape of paper Fig. 2d at micro scale: bio and
        // journal objects die in microseconds while inodes live on.
        let (mut mem, mut hooks, mut k) = setup();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let fd = k.create(&mut ctx, "/f").unwrap();
        k.write(&mut ctx, fd, 0, 16 * 4096).unwrap();
        k.fsync(&mut ctx, fd).unwrap();
        let bio_life = k.stats().ty(KernelObjectType::Bio).mean_lifetime();
        assert!(bio_life < Nanos::from_millis(1));
        assert_eq!(k.stats().ty(KernelObjectType::Inode).freed, 0);
        k.close(&mut ctx, fd).unwrap();
    }

    #[test]
    fn early_demux_saves_tcp_cpu() {
        struct EarlyHooks;
        impl crate::hooks::KernelHooks for EarlyHooks {
            fn place_page(
                &mut self,
                _req: &PageRequest,
                _mem: &MemorySystem,
            ) -> crate::hooks::Placement {
                crate::hooks::Placement::fast_then_slow()
            }
            fn early_socket_demux(&self) -> bool {
                true
            }
        }
        // Early demux path.
        let mut mem1 = MemorySystem::two_tier(1024 * 4096, 8);
        let mut h1 = EarlyHooks;
        let mut k1 = Kernel::new(KernelParams::default());
        let mut ctx1 = Ctx::new(&mut mem1, &mut h1);
        let fd1 = k1.socket(&mut ctx1).unwrap();
        let t0 = ctx1.mem.now();
        k1.deliver(&mut ctx1, fd1, 1448).unwrap();
        let early_cost = ctx1.mem.now() - t0;

        // Late demux path.
        let (mut mem2, mut h2, mut k2) = setup();
        let mut ctx2 = Ctx::new(&mut mem2, &mut h2);
        let fd2 = k2.socket(&mut ctx2).unwrap();
        let t0 = ctx2.mem.now();
        k2.deliver(&mut ctx2, fd2, 1448).unwrap();
        let late_cost = ctx2.mem.now() - t0;

        assert!(early_cost < late_cost, "early demux must be cheaper");
        assert_eq!(k1.net_stats().early_demuxed, 1);
        assert_eq!(k2.net_stats().early_demuxed, 0);
    }

    fn tenant_spec(id: u16, pc_budget: Option<u64>) -> crate::tenant::TenantSpec {
        crate::tenant::TenantSpec {
            id: TenantId(id),
            name: format!("t{id}"),
            qos: crate::tenant::QosClass::Burstable,
            fast_budget_frames: None,
            pc_budget,
        }
    }

    #[test]
    fn tenant_pc_cap_self_evicts() {
        let (mut mem, mut hooks, mut k) = setup();
        k.register_tenant(tenant_spec(1, Some(4)));
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        ctx.tenant = TenantId(1);
        let fd = k.create(&mut ctx, "/f").unwrap();
        k.write(&mut ctx, fd, 0, 16 * 4096).unwrap();
        let s = k.tenant_stats(TenantId(1));
        assert_eq!(s.pc_inserted, 16);
        assert!(s.pc_resident <= 4, "cap enforced, got {}", s.pc_resident);
        assert!(s.pc_self_evicted >= 12);
        assert_eq!(
            k.tenant_stats(TenantId::DEFAULT).pc_resident,
            0,
            "nothing charged to the shared kernel"
        );
        assert_eq!(s.cross_evictions_caused, 0);
        assert_eq!(s.cross_evictions_suffered, 0);
    }

    #[test]
    fn cross_tenant_evictions_are_attributed() {
        let (mut mem, mut hooks, mut k) = setup();
        // Small global budget, no per-tenant caps: the churner spills
        // into the shared shrinker and evicts the neighbour's pages.
        k.params.page_cache_budget = 8;
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        ctx.tenant = TenantId(1);
        let hot = k.create(&mut ctx, "/hot").unwrap();
        k.write(&mut ctx, hot, 0, 6 * 4096).unwrap();
        ctx.tenant = TenantId(2);
        let churn = k.create(&mut ctx, "/churn").unwrap();
        k.write(&mut ctx, churn, 0, 32 * 4096).unwrap();
        let t2 = k.tenant_stats(TenantId(2));
        assert!(t2.cross_evictions_caused > 0, "churn evicted the neighbour");
        assert_eq!(
            k.tenant_stats(TenantId(1)).cross_evictions_suffered,
            t2.cross_evictions_caused
        );
    }

    #[test]
    fn tenant_budgets_prevent_cross_eviction() {
        let (mut mem, mut hooks, mut k) = setup();
        // Per-tenant caps sum (12) below the global budget (16): the
        // global shrinker never runs, so the churner can only reclaim
        // from itself and the hot set stays intact.
        k.params.page_cache_budget = 16;
        k.register_tenant(tenant_spec(1, Some(6)));
        k.register_tenant(tenant_spec(2, Some(6)));
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        ctx.tenant = TenantId(1);
        let hot = k.create(&mut ctx, "/hot").unwrap();
        k.write(&mut ctx, hot, 0, 6 * 4096).unwrap();
        ctx.tenant = TenantId(2);
        let churn = k.create(&mut ctx, "/churn").unwrap();
        k.write(&mut ctx, churn, 0, 64 * 4096).unwrap();
        let t1 = k.tenant_stats(TenantId(1));
        let t2 = k.tenant_stats(TenantId(2));
        assert_eq!(t2.cross_evictions_caused, 0);
        assert_eq!(t1.cross_evictions_suffered, 0);
        assert_eq!(t1.pc_resident, 6, "hot set intact");
        assert_eq!(t1.pc_self_evicted, 0);
        assert!(t2.pc_self_evicted >= 58);
        assert!(k.cache_pages() <= 16);
    }

    #[test]
    fn socket_bytes_are_attributed_to_tenants() {
        let (mut mem, mut hooks, mut k) = setup();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        ctx.tenant = TenantId(3);
        let fd = k.socket(&mut ctx).unwrap();
        k.send(&mut ctx, fd, 3000).unwrap();
        k.deliver(&mut ctx, fd, 2000).unwrap();
        // A different tenant drains the shared socket: rx lands on the
        // reader, not the socket's owner.
        ctx.tenant = TenantId(4);
        k.recv(&mut ctx, fd, 10_000).unwrap();
        assert_eq!(k.tenant_stats(TenantId(3)).tx_bytes, 3000);
        assert_eq!(k.tenant_stats(TenantId(3)).rx_bytes, 0);
        assert_eq!(k.tenant_stats(TenantId(4)).rx_bytes, 2000);
        assert_eq!(
            k.vfs().inode(k.vfs().fd(fd).unwrap().inode).unwrap().owner,
            TenantId(3)
        );
    }

    #[test]
    fn deliver_then_objects_carry_socket_inode() {
        let (mut mem, mut hooks, mut k) = setup();
        let mut ctx = Ctx::new(&mut mem, &mut hooks);
        let fd = k.socket(&mut ctx).unwrap();
        let ino = k.vfs().fd(fd).unwrap().inode;
        k.deliver(&mut ctx, fd, 100).unwrap();
        // After late demux, the queued objects are associated.
        let assoc = k
            .objects()
            .iter()
            .filter(|o| o.info.inode == Some(ino))
            .count();
        assert!(assoc >= 3, "sock + skb + rxbuf associated, got {assoc}");
    }
}
