//! Active/inactive page LRU lists.
//!
//! Linux tracks reclaimable pages on per-zone active and inactive lists;
//! pages are promoted on reference and demoted by aging, and reclaim
//! scans the inactive tail. Policies in `kloc-policy` reuse this
//! structure for hotness detection of application pages (Nimble-style),
//! and the kernel itself uses one instance for page-cache reclaim.
//!
//! Scanning is *not free*: the paper measures 2 s per million pages
//! (§3.3) — callers charge [`crate::KernelParams::lru_scan_per_page`] per
//! scanned page, which is exactly why scan-based tiering cannot keep up
//! with short-lived kernel objects.
//!
//! Like Linux's `struct lruvec`, the lists are intrusive doubly-linked
//! lists over an arena of slots: touch, rotate, insert, and remove are
//! all O(1) pointer splices (the previous implementation kept the
//! ordering in per-list `BTreeMap`s keyed by timestamp, paying
//! O(log n) rebalancing on the simulator's hottest path).

use kloc_mem::FrameId;

/// Which list a page is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum List {
    /// Recently used pages.
    Active,
    /// Aging pages; reclaim candidates live at the tail.
    Inactive,
}

/// Result of one inactive-list scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Pages examined (each costs scan time).
    pub scanned: usize,
    /// Unreferenced pages removed from the list — eviction/demotion
    /// candidates, now owned by the caller.
    pub evict: Vec<FrameId>,
    /// Referenced pages rescued to the active list.
    pub promoted: usize,
}

/// Outcome of examining one page at the inactive head (the stepwise form
/// of [`PageLru::scan_inactive`], used by [`ShardedPageLru`] to merge
/// shards in global recency order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanStep {
    /// Unreferenced page removed from the list — now owned by the caller.
    Evict(FrameId),
    /// Referenced page rescued to the active MRU end.
    Rescued(FrameId),
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    frame: FrameId,
    prev: u32,
    next: u32,
    list: List,
    referenced: bool,
    /// Recency stamp, assigned from a monotone counter on every tail
    /// link (insert, promotion, rescue, aging). Within one list, stamps
    /// ascend head→tail; across the shards of a [`ShardedPageLru`] they
    /// define the single global recency order.
    stamp: u64,
}

/// Head/tail/length of one intrusive list. Head is the oldest
/// (least-recently inserted) page, tail the newest.
#[derive(Debug, Clone, Copy)]
struct Ends {
    head: u32,
    tail: u32,
    len: usize,
}

impl Default for Ends {
    fn default() -> Self {
        Ends {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }
}

/// Two-list page LRU.
#[derive(Debug, Clone, Default)]
pub struct PageLru {
    nodes: Vec<Node>,
    free: Vec<u32>,
    /// Direct-mapped slot -> node table. Keyed by [`FrameId::slot`]
    /// (dense; the full id is sparse — generation bits), verified
    /// against the node's stored full id to reject stale generations.
    /// `NIL` marks untracked slots.
    index: Vec<u32>,
    tracked: usize,
    active: Ends,
    inactive: Ends,
    /// Stamp counter for the standalone (un-sharded) entry points; the
    /// `_stamped` variants draw from a caller-owned counter instead so a
    /// [`ShardedPageLru`] can share one counter across its shards.
    own_stamp: u64,
}

#[inline]
fn next_stamp(stamp: &mut u64) -> u64 {
    *stamp += 1;
    *stamp
}

impl PageLru {
    /// Creates empty lists.
    pub fn new() -> Self {
        PageLru::default()
    }

    /// Pages on the active list.
    pub fn active_len(&self) -> usize {
        self.active.len
    }

    /// Pages on the inactive list.
    pub fn inactive_len(&self) -> usize {
        self.inactive.len
    }

    /// Total tracked pages.
    pub fn len(&self) -> usize {
        self.tracked
    }

    /// Whether no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.tracked == 0
    }

    /// Whether `frame` is tracked.
    pub fn contains(&self, frame: FrameId) -> bool {
        self.node_of(frame) != NIL
    }

    fn node_of(&self, frame: FrameId) -> u32 {
        match self.index.get(frame.slot() as usize) {
            Some(&n) if n != NIL && self.nodes[n as usize].frame == frame => n,
            _ => NIL,
        }
    }

    fn ends(&mut self, list: List) -> &mut Ends {
        match list {
            List::Active => &mut self.active,
            List::Inactive => &mut self.inactive,
        }
    }

    /// Links `node` at the tail (most-recent end) of `list`, stamping it
    /// with a fresh recency stamp.
    fn link_tail(&mut self, node: u32, list: List, stamp: u64) {
        let old_tail = self.ends(list).tail;
        {
            let n = &mut self.nodes[node as usize];
            n.list = list;
            n.prev = old_tail;
            n.next = NIL;
            n.stamp = stamp;
        }
        if old_tail != NIL {
            self.nodes[old_tail as usize].next = node;
        }
        let ends = self.ends(list);
        ends.tail = node;
        if ends.head == NIL {
            ends.head = node;
        }
        ends.len += 1;
    }

    /// Unlinks `node` from whichever list holds it.
    fn unlink(&mut self, node: u32) {
        let (prev, next, list) = {
            let n = &self.nodes[node as usize];
            (n.prev, n.next, n.list)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        }
        let ends = self.ends(list);
        if ends.head == node {
            ends.head = next;
        }
        if ends.tail == node {
            ends.tail = prev;
        }
        ends.len -= 1;
    }

    /// Allocates a node slot for `frame` (reusing freed slots).
    fn alloc_node(&mut self, frame: FrameId, list: List, referenced: bool) -> u32 {
        let node = Node {
            frame,
            prev: NIL,
            next: NIL,
            list,
            referenced,
            stamp: 0,
        };
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    fn push(&mut self, frame: FrameId, list: List, referenced: bool, stamp: u64) {
        let i = frame.slot() as usize;
        if i >= self.index.len() {
            self.index.resize(i + 1, NIL);
        } else {
            let stale = self.index[i];
            if stale != NIL {
                // The frame table recycled this slot: the previous
                // occupant's frame is dead (its id can never be queried
                // again), it just was never removed. Drop it.
                self.unlink(stale);
                self.free.push(stale);
                self.tracked -= 1;
            }
        }
        let node = self.alloc_node(frame, list, referenced);
        self.link_tail(node, list, stamp);
        self.index[i] = node;
        self.tracked += 1;
    }

    /// Adds a new page to a list (most-recent end).
    ///
    /// # Panics
    /// Panics if the frame is already tracked.
    pub fn insert(&mut self, frame: FrameId, list: List) {
        let mut s = self.own_stamp;
        self.insert_stamped(frame, list, &mut s);
        self.own_stamp = s;
    }

    /// [`PageLru::insert`] drawing its recency stamp from a caller-owned
    /// counter (shared across the shards of a [`ShardedPageLru`]).
    ///
    /// # Panics
    /// Panics if the frame is already tracked.
    pub fn insert_stamped(&mut self, frame: FrameId, list: List, stamp: &mut u64) {
        assert!(!self.contains(frame), "{frame} already on an LRU list");
        let s = next_stamp(stamp);
        self.push(frame, list, false, s);
    }

    /// Records a reference to `frame`. First touch sets the referenced
    /// bit; a second touch on the inactive list promotes to active
    /// (Linux's two-touch promotion). Unknown frames are ignored.
    pub fn mark_accessed(&mut self, frame: FrameId) {
        let mut s = self.own_stamp;
        self.mark_accessed_stamped(frame, &mut s);
        self.own_stamp = s;
    }

    /// [`PageLru::mark_accessed`] drawing from a caller-owned stamp
    /// counter. A stamp is consumed only when the touch promotes (the
    /// only case that relinks), so counter consumption is identical at
    /// any shard count.
    pub fn mark_accessed_stamped(&mut self, frame: FrameId, stamp: &mut u64) {
        let node = self.node_of(frame);
        if node == NIL {
            return;
        }
        let n = &mut self.nodes[node as usize];
        if n.referenced && n.list == List::Inactive {
            n.referenced = false;
            self.unlink(node);
            let s = next_stamp(stamp);
            self.link_tail(node, List::Active, s);
        } else {
            n.referenced = true;
        }
    }

    /// Stops tracking `frame` (freed or migrated away). Returns whether
    /// it was tracked.
    pub fn remove(&mut self, frame: FrameId) -> bool {
        let node = self.node_of(frame);
        if node == NIL {
            return false;
        }
        self.index[frame.slot() as usize] = NIL;
        self.tracked -= 1;
        self.unlink(node);
        self.free.push(node);
        true
    }

    /// Scans up to `n` pages from the inactive tail (oldest first):
    /// referenced pages are rescued to the active list; unreferenced
    /// pages are removed and returned as eviction candidates.
    pub fn scan_inactive(&mut self, n: usize) -> ScanOutcome {
        let mut out = ScanOutcome::default();
        let mut s = self.own_stamp;
        for _ in 0..n {
            match self.scan_one_inactive(&mut s) {
                Some(ScanStep::Evict(frame)) => {
                    out.scanned += 1;
                    out.evict.push(frame);
                }
                Some(ScanStep::Rescued(_)) => {
                    out.scanned += 1;
                    out.promoted += 1;
                }
                None => break,
            }
        }
        self.own_stamp = s;
        out
    }

    /// Examines the single oldest inactive page: referenced pages are
    /// rescued to the active MRU end (consuming a stamp), unreferenced
    /// pages are removed and handed to the caller. `None` when the
    /// inactive list is empty.
    pub fn scan_one_inactive(&mut self, stamp: &mut u64) -> Option<ScanStep> {
        let node = self.inactive.head;
        if node == NIL {
            return None;
        }
        self.unlink(node);
        let (frame, referenced) = {
            let n = &self.nodes[node as usize];
            (n.frame, n.referenced)
        };
        if referenced {
            // Rescue: rotate to the active MRU end, reference cleared.
            self.nodes[node as usize].referenced = false;
            let s = next_stamp(stamp);
            self.link_tail(node, List::Active, s);
            Some(ScanStep::Rescued(frame))
        } else {
            self.index[frame.slot() as usize] = NIL;
            self.tracked -= 1;
            self.free.push(node);
            Some(ScanStep::Evict(frame))
        }
    }

    /// Ages up to `n` pages from the active tail to the inactive list
    /// (clearing their referenced bit).
    pub fn age_active(&mut self, n: usize) -> usize {
        let mut moved = 0;
        let mut s = self.own_stamp;
        while moved < n && self.age_one_active(&mut s).is_some() {
            moved += 1;
        }
        self.own_stamp = s;
        moved
    }

    /// Moves the single oldest active page to the inactive MRU end
    /// (clearing its referenced bit). `None` when the active list is
    /// empty.
    pub fn age_one_active(&mut self, stamp: &mut u64) -> Option<FrameId> {
        let node = self.active.head;
        if node == NIL {
            return None;
        }
        self.unlink(node);
        self.nodes[node as usize].referenced = false;
        let s = next_stamp(stamp);
        self.link_tail(node, List::Inactive, s);
        Some(self.nodes[node as usize].frame)
    }

    /// Recency stamp of the oldest page on `list`, if any. Across the
    /// shards of a [`ShardedPageLru`] the minimum head stamp identifies
    /// the globally oldest page.
    pub fn head_stamp(&self, list: List) -> Option<u64> {
        let ends = match list {
            List::Active => &self.active,
            List::Inactive => &self.inactive,
        };
        (ends.head != NIL).then(|| self.nodes[ends.head as usize].stamp)
    }

    fn iter_list(&self, ends: &Ends) -> impl Iterator<Item = FrameId> + '_ {
        ListIter {
            lru: self,
            cursor: ends.head,
        }
    }

    /// Iterates inactive frames oldest-first without removing them.
    pub fn inactive_iter(&self) -> impl Iterator<Item = FrameId> + '_ {
        self.iter_list(&self.inactive)
    }

    /// Iterates active frames oldest-first without removing them.
    pub fn active_iter(&self) -> impl Iterator<Item = FrameId> + '_ {
        self.iter_list(&self.active)
    }
}

#[cfg(feature = "ksan")]
impl PageLru {
    /// Walks both intrusive lists and cross-checks them against the
    /// slot index and the counters: list lengths, link reciprocity,
    /// list tags, and index round-trips. Observation only.
    pub fn ksan_audit(&self, out: &mut Vec<kloc_mem::ksan::Violation>) {
        use kloc_mem::ksan::Violation;
        let mut walked = 0usize;
        for (ends, list, name) in [
            (&self.active, List::Active, "active"),
            (&self.inactive, List::Inactive, "inactive"),
        ] {
            let mut prev = NIL;
            let mut prev_stamp = 0u64;
            let mut cursor = ends.head;
            let mut len = 0usize;
            while cursor != NIL {
                let n = &self.nodes[cursor as usize];
                if len > 0 && n.stamp <= prev_stamp {
                    out.push(Violation::new(
                        "PageLru list links <-> Node.stamp",
                        format!("frame {}", n.frame),
                        "recency stamps ascend head to tail",
                        format!("> {prev_stamp}"),
                        format!("stamp = {}", n.stamp),
                    ));
                }
                prev_stamp = n.stamp;
                if n.list != list {
                    out.push(Violation::new(
                        "PageLru list links <-> Node.list",
                        format!("frame {}", n.frame),
                        "a node is linked on the list its tag names",
                        format!("{name} (linked there)"),
                        format!("tagged {:?}", n.list),
                    ));
                }
                if n.prev != prev {
                    out.push(Violation::new(
                        "PageLru.next <-> PageLru.prev",
                        format!("frame {}", n.frame),
                        "forward and backward links are reciprocal",
                        format!("prev = {prev}"),
                        format!("prev = {}", n.prev),
                    ));
                }
                if self.index.get(n.frame.slot() as usize) != Some(&cursor) {
                    out.push(Violation::new(
                        "PageLru list links <-> PageLru.index",
                        format!("frame {}", n.frame),
                        "every linked node is reachable through the index",
                        format!("index[{}] = {cursor}", n.frame.slot()),
                        format!(
                            "index[{}] = {:?}",
                            n.frame.slot(),
                            self.index.get(n.frame.slot() as usize)
                        ),
                    ));
                }
                prev = cursor;
                cursor = n.next;
                len += 1;
                if len > self.nodes.len() {
                    out.push(Violation::new(
                        "PageLru list links",
                        format!("{name} list"),
                        "lists are acyclic",
                        format!("<= {} nodes", self.nodes.len()),
                        "walk did not terminate".to_owned(),
                    ));
                    return;
                }
            }
            if ends.tail != prev {
                out.push(Violation::new(
                    "PageLru.Ends.tail <-> list links",
                    format!("{name} list"),
                    "the tail pointer names the last linked node",
                    format!("tail = {prev}"),
                    format!("tail = {}", ends.tail),
                ));
            }
            if ends.len != len {
                out.push(Violation::new(
                    "PageLru.Ends.len <-> list links",
                    format!("{name} list"),
                    "the cached length equals the walked length",
                    format!("{len} walked"),
                    format!("len = {}", ends.len),
                ));
            }
            walked += len;
        }
        if self.tracked != walked {
            out.push(Violation::new(
                "PageLru.tracked <-> list links",
                "page LRU",
                "tracked equals the nodes linked on both lists",
                format!("{walked} linked"),
                format!("tracked = {}", self.tracked),
            ));
        }
        let indexed = self.index.iter().filter(|&&n| n != NIL).count();
        if indexed != self.tracked {
            out.push(Violation::new(
                "PageLru.index <-> PageLru.tracked",
                "page LRU",
                "the index holds exactly one entry per tracked frame",
                format!("tracked = {}", self.tracked),
                format!("{indexed} index entries"),
            ));
        }
    }

    /// Corruption hook for sanitizer self-tests: drops `frame`'s index
    /// entry while leaving it linked on its list.
    #[doc(hidden)]
    pub fn ksan_break_index(&mut self, frame: FrameId) {
        let i = frame.slot() as usize;
        if i < self.index.len() {
            self.index[i] = NIL;
        }
    }
}

/// Sharded two-list page LRU: `S` independent [`PageLru`] shards (frames
/// home to shard `slot & mask`) sharing ONE recency-stamp counter.
///
/// Sharding splits the structure (per-CPU-style contention relief, the
/// aurora_os pattern) without perturbing observable behavior: every tail
/// link draws from the shared counter in simulation-event order, so the
/// union of all shards carries exactly the stamp sequence a single list
/// would, and [`ShardedPageLru::scan_inactive`]/[`ShardedPageLru::age_active`]
/// merge shards by minimum head stamp — reproducing the single-list
/// processing order byte-for-byte at any shard count.
#[derive(Debug, Clone)]
pub struct ShardedPageLru {
    shards: Vec<PageLru>,
    mask: u32,
    stamp: u64,
}

impl Default for ShardedPageLru {
    fn default() -> Self {
        ShardedPageLru::new(1)
    }
}

impl ShardedPageLru {
    /// Creates a sharded LRU with `shards` shards (rounded up to a power
    /// of two, minimum 1).
    pub fn new(shards: u32) -> Self {
        let count = shards.max(1).next_power_of_two() as usize;
        ShardedPageLru {
            shards: (0..count).map(|_| PageLru::new()).collect(),
            // lint: truncation-ok — count is at most u32::MAX + 1 here
            // and came from a u32.
            mask: (count - 1) as u32,
            stamp: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_of(&self, frame: FrameId) -> usize {
        (frame.slot() & self.mask) as usize
    }

    /// Pages on the active lists (all shards).
    pub fn active_len(&self) -> usize {
        self.shards.iter().map(PageLru::active_len).sum()
    }

    /// Pages on the inactive lists (all shards).
    pub fn inactive_len(&self) -> usize {
        self.shards.iter().map(PageLru::inactive_len).sum()
    }

    /// Total tracked pages.
    pub fn len(&self) -> usize {
        self.shards.iter().map(PageLru::len).sum()
    }

    /// Whether no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(PageLru::is_empty)
    }

    /// Whether `frame` is tracked.
    pub fn contains(&self, frame: FrameId) -> bool {
        self.shards[self.shard_of(frame)].contains(frame)
    }

    /// Adds a new page to its home shard (most-recent end).
    ///
    /// # Panics
    /// Panics if the frame is already tracked.
    pub fn insert(&mut self, frame: FrameId, list: List) {
        let shard = self.shard_of(frame);
        self.shards[shard].insert_stamped(frame, list, &mut self.stamp);
    }

    /// Records a reference to `frame` (two-touch promotion; unknown
    /// frames ignored).
    pub fn mark_accessed(&mut self, frame: FrameId) {
        let shard = self.shard_of(frame);
        self.shards[shard].mark_accessed_stamped(frame, &mut self.stamp);
    }

    /// Stops tracking `frame`. Returns whether it was tracked.
    pub fn remove(&mut self, frame: FrameId) -> bool {
        let shard = self.shard_of(frame);
        self.shards[shard].remove(frame)
    }

    /// Shard index holding the globally oldest page on `list`, by
    /// minimum head stamp. Ties are impossible: stamps are unique.
    fn oldest_shard(&self, list: List) -> Option<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.head_stamp(list).map(|st| (st, i)))
            .min()
            .map(|(_, i)| i)
    }

    /// Scans up to `n` pages across all shards in global oldest-first
    /// order (identical to a single list's scan at any shard count).
    pub fn scan_inactive(&mut self, n: usize) -> ScanOutcome {
        let mut out = ScanOutcome::default();
        for _ in 0..n {
            let Some(shard) = self.oldest_shard(List::Inactive) else {
                break;
            };
            match self.shards[shard].scan_one_inactive(&mut self.stamp) {
                Some(ScanStep::Evict(frame)) => {
                    out.scanned += 1;
                    out.evict.push(frame);
                }
                Some(ScanStep::Rescued(_)) => {
                    out.scanned += 1;
                    out.promoted += 1;
                }
                None => unreachable!("oldest_shard saw a head"),
            }
        }
        out
    }

    /// Ages up to `n` pages, oldest active first across all shards.
    pub fn age_active(&mut self, n: usize) -> usize {
        let mut moved = 0;
        while moved < n {
            let Some(shard) = self.oldest_shard(List::Active) else {
                break;
            };
            self.shards[shard]
                .age_one_active(&mut self.stamp)
                .expect("oldest_shard saw a head"); // lint: unwrap-ok
            moved += 1;
        }
        moved
    }

    /// Iterates inactive frames in global oldest-first order (merged by
    /// stamp). Allocates a merged snapshot; for reports, not hot paths.
    pub fn inactive_iter(&self) -> impl Iterator<Item = FrameId> + '_ {
        self.merged(List::Inactive).into_iter()
    }

    /// Iterates active frames in global oldest-first order.
    pub fn active_iter(&self) -> impl Iterator<Item = FrameId> + '_ {
        self.merged(List::Active).into_iter()
    }

    fn merged(&self, list: List) -> Vec<FrameId> {
        let mut stamped: Vec<(u64, FrameId)> = Vec::new();
        for shard in &self.shards {
            let mut cursor = match list {
                List::Active => shard.active.head,
                List::Inactive => shard.inactive.head,
            };
            while cursor != NIL {
                let n = &shard.nodes[cursor as usize];
                stamped.push((n.stamp, n.frame));
                cursor = n.next;
            }
        }
        stamped.sort_unstable();
        stamped.into_iter().map(|(_, f)| f).collect()
    }
}

#[cfg(feature = "ksan")]
impl ShardedPageLru {
    /// Audits every shard, plus the cross-shard invariants: frames home
    /// to `slot & mask`, and no shard's stamps exceed the shared counter.
    pub fn ksan_audit(&self, out: &mut Vec<kloc_mem::ksan::Violation>) {
        use kloc_mem::ksan::Violation;
        for (i, shard) in self.shards.iter().enumerate() {
            shard.ksan_audit(out);
            for frame in shard.active_iter().chain(shard.inactive_iter()) {
                let home = (frame.slot() & self.mask) as usize;
                if home != i {
                    out.push(Violation::new(
                        "ShardedPageLru homing <-> FrameId.slot",
                        format!("frame {frame}"),
                        "every frame lives on its home shard (slot & mask)",
                        format!("shard {home}"),
                        format!("found on shard {i}"),
                    ));
                }
                let stamp = shard.nodes[shard.node_of(frame) as usize].stamp;
                if stamp > self.stamp {
                    out.push(Violation::new(
                        "ShardedPageLru.stamp <-> shard stamps",
                        format!("frame {frame}"),
                        "no node outruns the shared stamp counter",
                        format!("<= {}", self.stamp),
                        format!("stamp = {stamp}"),
                    ));
                }
            }
        }
    }

    /// Corruption hook: relocates one tracked frame onto the wrong shard
    /// (no-op with fewer than two shards or no tracked pages).
    #[doc(hidden)]
    pub fn ksan_break_homing(&mut self) {
        if self.shards.len() < 2 {
            return;
        }
        let Some((shard, frame, list)) = self.shards.iter().enumerate().find_map(|(i, s)| {
            s.inactive_iter()
                .next()
                .map(|f| (i, f, List::Inactive))
                .or_else(|| s.active_iter().next().map(|f| (i, f, List::Active)))
        }) else {
            return;
        };
        self.shards[shard].remove(frame);
        let wrong = (shard + 1) % self.shards.len();
        self.shards[wrong].insert_stamped(frame, list, &mut self.stamp);
    }

    /// Corruption hook: forwards to one shard's index-drop hook.
    #[doc(hidden)]
    pub fn ksan_break_index(&mut self, frame: FrameId) {
        let shard = self.shard_of(frame);
        self.shards[shard].ksan_break_index(frame);
    }
}

struct ListIter<'a> {
    lru: &'a PageLru,
    cursor: u32,
}

impl Iterator for ListIter<'_> {
    type Item = FrameId;

    fn next(&mut self) -> Option<FrameId> {
        if self.cursor == NIL {
            return None;
        }
        let n = &self.lru.nodes[self.cursor as usize];
        self.cursor = n.next;
        Some(n.frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_counts() {
        let mut lru = PageLru::new();
        lru.insert(FrameId(1), List::Inactive);
        lru.insert(FrameId(2), List::Active);
        assert_eq!(lru.inactive_len(), 1);
        assert_eq!(lru.active_len(), 1);
        assert!(lru.contains(FrameId(1)));
        assert!(!lru.contains(FrameId(3)));
    }

    #[test]
    #[should_panic(expected = "already on an LRU list")]
    fn double_insert_panics() {
        let mut lru = PageLru::new();
        lru.insert(FrameId(1), List::Inactive);
        lru.insert(FrameId(1), List::Active);
    }

    #[test]
    fn two_touch_promotion() {
        let mut lru = PageLru::new();
        lru.insert(FrameId(1), List::Inactive);
        lru.mark_accessed(FrameId(1)); // sets referenced
        assert_eq!(lru.inactive_len(), 1);
        lru.mark_accessed(FrameId(1)); // promotes
        assert_eq!(lru.active_len(), 1);
        assert_eq!(lru.inactive_len(), 0);
    }

    #[test]
    fn scan_rescues_referenced_and_evicts_cold() {
        let mut lru = PageLru::new();
        lru.insert(FrameId(1), List::Inactive);
        lru.insert(FrameId(2), List::Inactive);
        lru.mark_accessed(FrameId(1));
        let out = lru.scan_inactive(10);
        assert_eq!(out.scanned, 2);
        assert_eq!(out.promoted, 1);
        assert_eq!(out.evict, vec![FrameId(2)]);
        assert!(lru.contains(FrameId(1)));
        assert!(!lru.contains(FrameId(2)));
    }

    #[test]
    fn scan_is_oldest_first() {
        let mut lru = PageLru::new();
        for i in 0..5 {
            lru.insert(FrameId(i), List::Inactive);
        }
        let out = lru.scan_inactive(2);
        assert_eq!(out.evict, vec![FrameId(0), FrameId(1)]);
    }

    #[test]
    fn aging_moves_active_to_inactive() {
        let mut lru = PageLru::new();
        lru.insert(FrameId(1), List::Active);
        lru.insert(FrameId(2), List::Active);
        assert_eq!(lru.age_active(1), 1);
        assert_eq!(lru.inactive_len(), 1);
        assert_eq!(lru.active_len(), 1);
        // Oldest active page (frame 1) moved first.
        assert_eq!(lru.inactive_iter().next(), Some(FrameId(1)));
    }

    #[test]
    fn remove_untracks() {
        let mut lru = PageLru::new();
        lru.insert(FrameId(1), List::Active);
        assert!(lru.remove(FrameId(1)));
        assert!(!lru.remove(FrameId(1)));
        assert!(lru.is_empty());
    }

    #[test]
    fn mark_accessed_unknown_frame_is_noop() {
        let mut lru = PageLru::new();
        lru.mark_accessed(FrameId(99));
        assert!(lru.is_empty());
    }

    #[test]
    fn stale_generation_misses_and_is_displaced() {
        // Slot 1, generation 0 vs generation 1 (frame table id packing:
        // generation << 32 | slot).
        let old = FrameId(1);
        let new = FrameId((1 << 32) | 1);
        let mut lru = PageLru::new();
        lru.insert(old, List::Inactive);
        // The recycled slot's new id does not alias the old entry.
        assert!(!lru.contains(new));
        lru.mark_accessed(new); // no-op
        assert!(!lru.remove(new));
        assert_eq!(lru.len(), 1);
        // Inserting the new generation displaces the dead occupant.
        lru.insert(new, List::Active);
        assert_eq!(lru.len(), 1);
        assert!(lru.contains(new));
        assert!(!lru.contains(old));
        assert_eq!(lru.active_len(), 1);
        assert_eq!(lru.inactive_len(), 0);
    }

    #[test]
    fn aged_page_lands_at_inactive_mru_end() {
        // Matches the timestamp-ordered implementation: aging re-stamps
        // the page, so it enters the inactive list as *newest*.
        let mut lru = PageLru::new();
        lru.insert(FrameId(1), List::Inactive);
        lru.insert(FrameId(2), List::Active);
        lru.age_active(1);
        let order: Vec<FrameId> = lru.inactive_iter().collect();
        assert_eq!(order, vec![FrameId(1), FrameId(2)]);
    }

    #[test]
    fn promotion_rotates_to_active_mru_end() {
        let mut lru = PageLru::new();
        lru.insert(FrameId(1), List::Active);
        lru.insert(FrameId(2), List::Inactive);
        lru.mark_accessed(FrameId(2));
        lru.mark_accessed(FrameId(2)); // promote
        let order: Vec<FrameId> = lru.active_iter().collect();
        assert_eq!(order, vec![FrameId(1), FrameId(2)]);
        // A promoted page needs two fresh touches to promote again.
        assert_eq!(lru.age_active(2), 2);
        assert_eq!(
            lru.inactive_iter().collect::<Vec<_>>(),
            vec![FrameId(1), FrameId(2)]
        );
        lru.mark_accessed(FrameId(2));
        let out = lru.scan_inactive(2);
        assert_eq!(out.evict, vec![FrameId(1)]);
        assert_eq!(out.promoted, 1);
    }

    /// Deterministic op mix driven by a tiny LCG: inserts, touches,
    /// removals, scans, and aging over a churning slot space.
    fn churn(apply: &mut dyn FnMut(u8, FrameId) -> Vec<FrameId>) -> Vec<Vec<FrameId>> {
        let mut rng = 0x2545F4914F6CDD1Du64;
        let mut outcomes = Vec::new();
        for step in 0u64..600 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let slot = (rng >> 33) % 96;
            let generation = step / 96;
            let frame = FrameId((generation << 32) | slot);
            let op = ((rng >> 20) % 8) as u8;
            outcomes.push(apply(op, frame));
        }
        outcomes
    }

    fn drive(lru: &mut ShardedPageLru) -> Vec<Vec<FrameId>> {
        churn(&mut |op, frame| match op {
            0 | 1 => {
                if !lru.contains(frame) {
                    lru.insert(frame, List::Inactive);
                }
                vec![]
            }
            2..=4 => {
                lru.mark_accessed(frame);
                vec![]
            }
            5 => {
                lru.remove(frame);
                vec![]
            }
            6 => lru.scan_inactive(3).evict,
            _ => {
                lru.age_active(2);
                lru.active_iter().chain(lru.inactive_iter()).collect()
            }
        })
    }

    #[test]
    fn sharded_matches_single_list_at_any_shard_count() {
        let baseline = drive(&mut ShardedPageLru::new(1));
        for shards in [2u32, 4, 8] {
            let got = drive(&mut ShardedPageLru::new(shards));
            assert_eq!(baseline, got, "shard count {shards} diverged");
        }
    }

    #[test]
    fn sharded_counts_and_membership() {
        let mut lru = ShardedPageLru::new(4);
        assert_eq!(lru.shard_count(), 4);
        for i in 0..10 {
            lru.insert(FrameId(i), List::Inactive);
        }
        assert_eq!(lru.len(), 10);
        assert_eq!(lru.inactive_len(), 10);
        assert!(lru.contains(FrameId(3)));
        assert!(lru.remove(FrameId(3)));
        assert!(!lru.contains(FrameId(3)));
        assert_eq!(lru.len(), 9);
        // Scan returns globally oldest first despite 4-way sharding.
        let out = lru.scan_inactive(3);
        assert_eq!(out.evict, vec![FrameId(0), FrameId(1), FrameId(2)]);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedPageLru::new(0).shard_count(), 1);
        assert_eq!(ShardedPageLru::new(3).shard_count(), 4);
        assert_eq!(ShardedPageLru::new(8).shard_count(), 8);
    }
}
