//! Active/inactive page LRU lists.
//!
//! Linux tracks reclaimable pages on per-zone active and inactive lists;
//! pages are promoted on reference and demoted by aging, and reclaim
//! scans the inactive tail. Policies in `kloc-policy` reuse this
//! structure for hotness detection of application pages (Nimble-style),
//! and the kernel itself uses one instance for page-cache reclaim.
//!
//! Scanning is *not free*: the paper measures 2 s per million pages
//! (§3.3) — callers charge [`crate::KernelParams::lru_scan_per_page`] per
//! scanned page, which is exactly why scan-based tiering cannot keep up
//! with short-lived kernel objects.

use std::collections::{BTreeMap, HashMap};

use kloc_mem::FrameId;

/// Which list a page is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum List {
    /// Recently used pages.
    Active,
    /// Aging pages; reclaim candidates live at the tail.
    Inactive,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    list: List,
    seq: u64,
    referenced: bool,
}

/// Result of one inactive-list scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Pages examined (each costs scan time).
    pub scanned: usize,
    /// Unreferenced pages removed from the list — eviction/demotion
    /// candidates, now owned by the caller.
    pub evict: Vec<FrameId>,
    /// Referenced pages rescued to the active list.
    pub promoted: usize,
}

/// Two-list page LRU.
#[derive(Debug, Clone, Default)]
pub struct PageLru {
    active: BTreeMap<u64, FrameId>,
    inactive: BTreeMap<u64, FrameId>,
    slots: HashMap<FrameId, Slot>,
    next_seq: u64,
}

impl PageLru {
    /// Creates empty lists.
    pub fn new() -> Self {
        PageLru::default()
    }

    /// Pages on the active list.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Pages on the inactive list.
    pub fn inactive_len(&self) -> usize {
        self.inactive.len()
    }

    /// Total tracked pages.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether `frame` is tracked.
    pub fn contains(&self, frame: FrameId) -> bool {
        self.slots.contains_key(&frame)
    }

    fn push(&mut self, frame: FrameId, list: List, referenced: bool) {
        let seq = self.next_seq;
        self.next_seq += 1;
        match list {
            List::Active => self.active.insert(seq, frame),
            List::Inactive => self.inactive.insert(seq, frame),
        };
        self.slots.insert(
            frame,
            Slot {
                list,
                seq,
                referenced,
            },
        );
    }

    /// Adds a new page to a list (most-recent end).
    ///
    /// # Panics
    /// Panics if the frame is already tracked.
    pub fn insert(&mut self, frame: FrameId, list: List) {
        assert!(
            !self.slots.contains_key(&frame),
            "{frame} already on an LRU list"
        );
        self.push(frame, list, false);
    }

    /// Records a reference to `frame`. First touch sets the referenced
    /// bit; a second touch on the inactive list promotes to active
    /// (Linux's two-touch promotion). Unknown frames are ignored.
    pub fn mark_accessed(&mut self, frame: FrameId) {
        let Some(slot) = self.slots.get_mut(&frame) else {
            return;
        };
        if slot.referenced && slot.list == List::Inactive {
            let seq = slot.seq;
            self.inactive.remove(&seq);
            self.slots.remove(&frame);
            self.push(frame, List::Active, false);
        } else {
            slot.referenced = true;
        }
    }

    /// Stops tracking `frame` (freed or migrated away). Returns whether
    /// it was tracked.
    pub fn remove(&mut self, frame: FrameId) -> bool {
        match self.slots.remove(&frame) {
            Some(slot) => {
                match slot.list {
                    List::Active => self.active.remove(&slot.seq),
                    List::Inactive => self.inactive.remove(&slot.seq),
                };
                true
            }
            None => false,
        }
    }

    /// Scans up to `n` pages from the inactive tail (oldest first):
    /// referenced pages are rescued to the active list; unreferenced
    /// pages are removed and returned as eviction candidates.
    pub fn scan_inactive(&mut self, n: usize) -> ScanOutcome {
        let mut out = ScanOutcome::default();
        for _ in 0..n {
            let Some((&seq, &frame)) = self.inactive.iter().next() else {
                break;
            };
            self.inactive.remove(&seq);
            let slot = self.slots.remove(&frame).expect("slot missing for listed frame");
            out.scanned += 1;
            if slot.referenced {
                self.push(frame, List::Active, false);
                out.promoted += 1;
            } else {
                out.evict.push(frame);
            }
        }
        out
    }

    /// Ages up to `n` pages from the active tail to the inactive list
    /// (clearing their referenced bit).
    pub fn age_active(&mut self, n: usize) -> usize {
        let mut moved = 0;
        for _ in 0..n {
            let Some((&seq, &frame)) = self.active.iter().next() else {
                break;
            };
            self.active.remove(&seq);
            self.slots.remove(&frame);
            self.push(frame, List::Inactive, false);
            moved += 1;
        }
        moved
    }

    /// Iterates inactive frames oldest-first without removing them.
    pub fn inactive_iter(&self) -> impl Iterator<Item = FrameId> + '_ {
        self.inactive.values().copied()
    }

    /// Iterates active frames oldest-first without removing them.
    pub fn active_iter(&self) -> impl Iterator<Item = FrameId> + '_ {
        self.active.values().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_counts() {
        let mut lru = PageLru::new();
        lru.insert(FrameId(1), List::Inactive);
        lru.insert(FrameId(2), List::Active);
        assert_eq!(lru.inactive_len(), 1);
        assert_eq!(lru.active_len(), 1);
        assert!(lru.contains(FrameId(1)));
        assert!(!lru.contains(FrameId(3)));
    }

    #[test]
    #[should_panic(expected = "already on an LRU list")]
    fn double_insert_panics() {
        let mut lru = PageLru::new();
        lru.insert(FrameId(1), List::Inactive);
        lru.insert(FrameId(1), List::Active);
    }

    #[test]
    fn two_touch_promotion() {
        let mut lru = PageLru::new();
        lru.insert(FrameId(1), List::Inactive);
        lru.mark_accessed(FrameId(1)); // sets referenced
        assert_eq!(lru.inactive_len(), 1);
        lru.mark_accessed(FrameId(1)); // promotes
        assert_eq!(lru.active_len(), 1);
        assert_eq!(lru.inactive_len(), 0);
    }

    #[test]
    fn scan_rescues_referenced_and_evicts_cold() {
        let mut lru = PageLru::new();
        lru.insert(FrameId(1), List::Inactive);
        lru.insert(FrameId(2), List::Inactive);
        lru.mark_accessed(FrameId(1));
        let out = lru.scan_inactive(10);
        assert_eq!(out.scanned, 2);
        assert_eq!(out.promoted, 1);
        assert_eq!(out.evict, vec![FrameId(2)]);
        assert!(lru.contains(FrameId(1)));
        assert!(!lru.contains(FrameId(2)));
    }

    #[test]
    fn scan_is_oldest_first() {
        let mut lru = PageLru::new();
        for i in 0..5 {
            lru.insert(FrameId(i), List::Inactive);
        }
        let out = lru.scan_inactive(2);
        assert_eq!(out.evict, vec![FrameId(0), FrameId(1)]);
    }

    #[test]
    fn aging_moves_active_to_inactive() {
        let mut lru = PageLru::new();
        lru.insert(FrameId(1), List::Active);
        lru.insert(FrameId(2), List::Active);
        assert_eq!(lru.age_active(1), 1);
        assert_eq!(lru.inactive_len(), 1);
        assert_eq!(lru.active_len(), 1);
        // Oldest active page (frame 1) moved first.
        assert_eq!(lru.inactive_iter().next(), Some(FrameId(1)));
    }

    #[test]
    fn remove_untracks() {
        let mut lru = PageLru::new();
        lru.insert(FrameId(1), List::Active);
        assert!(lru.remove(FrameId(1)));
        assert!(!lru.remove(FrameId(1)));
        assert!(lru.is_empty());
    }

    #[test]
    fn mark_accessed_unknown_frame_is_noop() {
        let mut lru = PageLru::new();
        lru.mark_accessed(FrameId(99));
        assert!(lru.is_empty());
    }
}
