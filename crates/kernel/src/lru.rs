//! Active/inactive page LRU lists.
//!
//! Linux tracks reclaimable pages on per-zone active and inactive lists;
//! pages are promoted on reference and demoted by aging, and reclaim
//! scans the inactive tail. Policies in `kloc-policy` reuse this
//! structure for hotness detection of application pages (Nimble-style),
//! and the kernel itself uses one instance for page-cache reclaim.
//!
//! Scanning is *not free*: the paper measures 2 s per million pages
//! (§3.3) — callers charge [`crate::KernelParams::lru_scan_per_page`] per
//! scanned page, which is exactly why scan-based tiering cannot keep up
//! with short-lived kernel objects.
//!
//! Like Linux's `struct lruvec`, the lists are intrusive doubly-linked
//! lists over an arena of slots: touch, rotate, insert, and remove are
//! all O(1) pointer splices (the previous implementation kept the
//! ordering in per-list `BTreeMap`s keyed by timestamp, paying
//! O(log n) rebalancing on the simulator's hottest path).

use kloc_mem::FrameId;

/// Which list a page is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum List {
    /// Recently used pages.
    Active,
    /// Aging pages; reclaim candidates live at the tail.
    Inactive,
}

/// Result of one inactive-list scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Pages examined (each costs scan time).
    pub scanned: usize,
    /// Unreferenced pages removed from the list — eviction/demotion
    /// candidates, now owned by the caller.
    pub evict: Vec<FrameId>,
    /// Referenced pages rescued to the active list.
    pub promoted: usize,
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    frame: FrameId,
    prev: u32,
    next: u32,
    list: List,
    referenced: bool,
}

/// Head/tail/length of one intrusive list. Head is the oldest
/// (least-recently inserted) page, tail the newest.
#[derive(Debug, Clone, Copy)]
struct Ends {
    head: u32,
    tail: u32,
    len: usize,
}

impl Default for Ends {
    fn default() -> Self {
        Ends {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }
}

/// Two-list page LRU.
#[derive(Debug, Clone, Default)]
pub struct PageLru {
    nodes: Vec<Node>,
    free: Vec<u32>,
    /// Direct-mapped slot -> node table. Keyed by [`FrameId::slot`]
    /// (dense; the full id is sparse — generation bits), verified
    /// against the node's stored full id to reject stale generations.
    /// `NIL` marks untracked slots.
    index: Vec<u32>,
    tracked: usize,
    active: Ends,
    inactive: Ends,
}

impl PageLru {
    /// Creates empty lists.
    pub fn new() -> Self {
        PageLru::default()
    }

    /// Pages on the active list.
    pub fn active_len(&self) -> usize {
        self.active.len
    }

    /// Pages on the inactive list.
    pub fn inactive_len(&self) -> usize {
        self.inactive.len
    }

    /// Total tracked pages.
    pub fn len(&self) -> usize {
        self.tracked
    }

    /// Whether no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.tracked == 0
    }

    /// Whether `frame` is tracked.
    pub fn contains(&self, frame: FrameId) -> bool {
        self.node_of(frame) != NIL
    }

    fn node_of(&self, frame: FrameId) -> u32 {
        match self.index.get(frame.slot() as usize) {
            Some(&n) if n != NIL && self.nodes[n as usize].frame == frame => n,
            _ => NIL,
        }
    }

    fn ends(&mut self, list: List) -> &mut Ends {
        match list {
            List::Active => &mut self.active,
            List::Inactive => &mut self.inactive,
        }
    }

    /// Links `node` at the tail (most-recent end) of `list`.
    fn link_tail(&mut self, node: u32, list: List) {
        let old_tail = self.ends(list).tail;
        {
            let n = &mut self.nodes[node as usize];
            n.list = list;
            n.prev = old_tail;
            n.next = NIL;
        }
        if old_tail != NIL {
            self.nodes[old_tail as usize].next = node;
        }
        let ends = self.ends(list);
        ends.tail = node;
        if ends.head == NIL {
            ends.head = node;
        }
        ends.len += 1;
    }

    /// Unlinks `node` from whichever list holds it.
    fn unlink(&mut self, node: u32) {
        let (prev, next, list) = {
            let n = &self.nodes[node as usize];
            (n.prev, n.next, n.list)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        }
        let ends = self.ends(list);
        if ends.head == node {
            ends.head = next;
        }
        if ends.tail == node {
            ends.tail = prev;
        }
        ends.len -= 1;
    }

    /// Allocates a node slot for `frame` (reusing freed slots).
    fn alloc_node(&mut self, frame: FrameId, list: List, referenced: bool) -> u32 {
        let node = Node {
            frame,
            prev: NIL,
            next: NIL,
            list,
            referenced,
        };
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    fn push(&mut self, frame: FrameId, list: List, referenced: bool) {
        let i = frame.slot() as usize;
        if i >= self.index.len() {
            self.index.resize(i + 1, NIL);
        } else {
            let stale = self.index[i];
            if stale != NIL {
                // The frame table recycled this slot: the previous
                // occupant's frame is dead (its id can never be queried
                // again), it just was never removed. Drop it.
                self.unlink(stale);
                self.free.push(stale);
                self.tracked -= 1;
            }
        }
        let node = self.alloc_node(frame, list, referenced);
        self.link_tail(node, list);
        self.index[i] = node;
        self.tracked += 1;
    }

    /// Adds a new page to a list (most-recent end).
    ///
    /// # Panics
    /// Panics if the frame is already tracked.
    pub fn insert(&mut self, frame: FrameId, list: List) {
        assert!(!self.contains(frame), "{frame} already on an LRU list");
        self.push(frame, list, false);
    }

    /// Records a reference to `frame`. First touch sets the referenced
    /// bit; a second touch on the inactive list promotes to active
    /// (Linux's two-touch promotion). Unknown frames are ignored.
    pub fn mark_accessed(&mut self, frame: FrameId) {
        let node = self.node_of(frame);
        if node == NIL {
            return;
        }
        let n = &mut self.nodes[node as usize];
        if n.referenced && n.list == List::Inactive {
            n.referenced = false;
            self.unlink(node);
            self.link_tail(node, List::Active);
        } else {
            n.referenced = true;
        }
    }

    /// Stops tracking `frame` (freed or migrated away). Returns whether
    /// it was tracked.
    pub fn remove(&mut self, frame: FrameId) -> bool {
        let node = self.node_of(frame);
        if node == NIL {
            return false;
        }
        self.index[frame.slot() as usize] = NIL;
        self.tracked -= 1;
        self.unlink(node);
        self.free.push(node);
        true
    }

    /// Scans up to `n` pages from the inactive tail (oldest first):
    /// referenced pages are rescued to the active list; unreferenced
    /// pages are removed and returned as eviction candidates.
    pub fn scan_inactive(&mut self, n: usize) -> ScanOutcome {
        let mut out = ScanOutcome::default();
        for _ in 0..n {
            let node = self.inactive.head;
            if node == NIL {
                break;
            }
            self.unlink(node);
            out.scanned += 1;
            let (frame, referenced) = {
                let n = &self.nodes[node as usize];
                (n.frame, n.referenced)
            };
            if referenced {
                // Rescue: rotate to the active MRU end, reference cleared.
                self.nodes[node as usize].referenced = false;
                self.link_tail(node, List::Active);
                out.promoted += 1;
            } else {
                self.index[frame.slot() as usize] = NIL;
                self.tracked -= 1;
                self.free.push(node);
                out.evict.push(frame);
            }
        }
        out
    }

    /// Ages up to `n` pages from the active tail to the inactive list
    /// (clearing their referenced bit).
    pub fn age_active(&mut self, n: usize) -> usize {
        let mut moved = 0;
        for _ in 0..n {
            let node = self.active.head;
            if node == NIL {
                break;
            }
            self.unlink(node);
            self.nodes[node as usize].referenced = false;
            self.link_tail(node, List::Inactive);
            moved += 1;
        }
        moved
    }

    fn iter_list(&self, ends: &Ends) -> impl Iterator<Item = FrameId> + '_ {
        ListIter {
            lru: self,
            cursor: ends.head,
        }
    }

    /// Iterates inactive frames oldest-first without removing them.
    pub fn inactive_iter(&self) -> impl Iterator<Item = FrameId> + '_ {
        self.iter_list(&self.inactive)
    }

    /// Iterates active frames oldest-first without removing them.
    pub fn active_iter(&self) -> impl Iterator<Item = FrameId> + '_ {
        self.iter_list(&self.active)
    }
}

#[cfg(feature = "ksan")]
impl PageLru {
    /// Walks both intrusive lists and cross-checks them against the
    /// slot index and the counters: list lengths, link reciprocity,
    /// list tags, and index round-trips. Observation only.
    pub fn ksan_audit(&self, out: &mut Vec<kloc_mem::ksan::Violation>) {
        use kloc_mem::ksan::Violation;
        let mut walked = 0usize;
        for (ends, list, name) in [
            (&self.active, List::Active, "active"),
            (&self.inactive, List::Inactive, "inactive"),
        ] {
            let mut prev = NIL;
            let mut cursor = ends.head;
            let mut len = 0usize;
            while cursor != NIL {
                let n = &self.nodes[cursor as usize];
                if n.list != list {
                    out.push(Violation::new(
                        "PageLru list links <-> Node.list",
                        format!("frame {}", n.frame),
                        "a node is linked on the list its tag names",
                        format!("{name} (linked there)"),
                        format!("tagged {:?}", n.list),
                    ));
                }
                if n.prev != prev {
                    out.push(Violation::new(
                        "PageLru.next <-> PageLru.prev",
                        format!("frame {}", n.frame),
                        "forward and backward links are reciprocal",
                        format!("prev = {prev}"),
                        format!("prev = {}", n.prev),
                    ));
                }
                if self.index.get(n.frame.slot() as usize) != Some(&cursor) {
                    out.push(Violation::new(
                        "PageLru list links <-> PageLru.index",
                        format!("frame {}", n.frame),
                        "every linked node is reachable through the index",
                        format!("index[{}] = {cursor}", n.frame.slot()),
                        format!(
                            "index[{}] = {:?}",
                            n.frame.slot(),
                            self.index.get(n.frame.slot() as usize)
                        ),
                    ));
                }
                prev = cursor;
                cursor = n.next;
                len += 1;
                if len > self.nodes.len() {
                    out.push(Violation::new(
                        "PageLru list links",
                        format!("{name} list"),
                        "lists are acyclic",
                        format!("<= {} nodes", self.nodes.len()),
                        "walk did not terminate".to_owned(),
                    ));
                    return;
                }
            }
            if ends.tail != prev {
                out.push(Violation::new(
                    "PageLru.Ends.tail <-> list links",
                    format!("{name} list"),
                    "the tail pointer names the last linked node",
                    format!("tail = {prev}"),
                    format!("tail = {}", ends.tail),
                ));
            }
            if ends.len != len {
                out.push(Violation::new(
                    "PageLru.Ends.len <-> list links",
                    format!("{name} list"),
                    "the cached length equals the walked length",
                    format!("{len} walked"),
                    format!("len = {}", ends.len),
                ));
            }
            walked += len;
        }
        if self.tracked != walked {
            out.push(Violation::new(
                "PageLru.tracked <-> list links",
                "page LRU",
                "tracked equals the nodes linked on both lists",
                format!("{walked} linked"),
                format!("tracked = {}", self.tracked),
            ));
        }
        let indexed = self.index.iter().filter(|&&n| n != NIL).count();
        if indexed != self.tracked {
            out.push(Violation::new(
                "PageLru.index <-> PageLru.tracked",
                "page LRU",
                "the index holds exactly one entry per tracked frame",
                format!("tracked = {}", self.tracked),
                format!("{indexed} index entries"),
            ));
        }
    }

    /// Corruption hook for sanitizer self-tests: drops `frame`'s index
    /// entry while leaving it linked on its list.
    #[doc(hidden)]
    pub fn ksan_break_index(&mut self, frame: FrameId) {
        let i = frame.slot() as usize;
        if i < self.index.len() {
            self.index[i] = NIL;
        }
    }
}

struct ListIter<'a> {
    lru: &'a PageLru,
    cursor: u32,
}

impl Iterator for ListIter<'_> {
    type Item = FrameId;

    fn next(&mut self) -> Option<FrameId> {
        if self.cursor == NIL {
            return None;
        }
        let n = &self.lru.nodes[self.cursor as usize];
        self.cursor = n.next;
        Some(n.frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_counts() {
        let mut lru = PageLru::new();
        lru.insert(FrameId(1), List::Inactive);
        lru.insert(FrameId(2), List::Active);
        assert_eq!(lru.inactive_len(), 1);
        assert_eq!(lru.active_len(), 1);
        assert!(lru.contains(FrameId(1)));
        assert!(!lru.contains(FrameId(3)));
    }

    #[test]
    #[should_panic(expected = "already on an LRU list")]
    fn double_insert_panics() {
        let mut lru = PageLru::new();
        lru.insert(FrameId(1), List::Inactive);
        lru.insert(FrameId(1), List::Active);
    }

    #[test]
    fn two_touch_promotion() {
        let mut lru = PageLru::new();
        lru.insert(FrameId(1), List::Inactive);
        lru.mark_accessed(FrameId(1)); // sets referenced
        assert_eq!(lru.inactive_len(), 1);
        lru.mark_accessed(FrameId(1)); // promotes
        assert_eq!(lru.active_len(), 1);
        assert_eq!(lru.inactive_len(), 0);
    }

    #[test]
    fn scan_rescues_referenced_and_evicts_cold() {
        let mut lru = PageLru::new();
        lru.insert(FrameId(1), List::Inactive);
        lru.insert(FrameId(2), List::Inactive);
        lru.mark_accessed(FrameId(1));
        let out = lru.scan_inactive(10);
        assert_eq!(out.scanned, 2);
        assert_eq!(out.promoted, 1);
        assert_eq!(out.evict, vec![FrameId(2)]);
        assert!(lru.contains(FrameId(1)));
        assert!(!lru.contains(FrameId(2)));
    }

    #[test]
    fn scan_is_oldest_first() {
        let mut lru = PageLru::new();
        for i in 0..5 {
            lru.insert(FrameId(i), List::Inactive);
        }
        let out = lru.scan_inactive(2);
        assert_eq!(out.evict, vec![FrameId(0), FrameId(1)]);
    }

    #[test]
    fn aging_moves_active_to_inactive() {
        let mut lru = PageLru::new();
        lru.insert(FrameId(1), List::Active);
        lru.insert(FrameId(2), List::Active);
        assert_eq!(lru.age_active(1), 1);
        assert_eq!(lru.inactive_len(), 1);
        assert_eq!(lru.active_len(), 1);
        // Oldest active page (frame 1) moved first.
        assert_eq!(lru.inactive_iter().next(), Some(FrameId(1)));
    }

    #[test]
    fn remove_untracks() {
        let mut lru = PageLru::new();
        lru.insert(FrameId(1), List::Active);
        assert!(lru.remove(FrameId(1)));
        assert!(!lru.remove(FrameId(1)));
        assert!(lru.is_empty());
    }

    #[test]
    fn mark_accessed_unknown_frame_is_noop() {
        let mut lru = PageLru::new();
        lru.mark_accessed(FrameId(99));
        assert!(lru.is_empty());
    }

    #[test]
    fn stale_generation_misses_and_is_displaced() {
        // Slot 1, generation 0 vs generation 1 (frame table id packing:
        // generation << 32 | slot).
        let old = FrameId(1);
        let new = FrameId((1 << 32) | 1);
        let mut lru = PageLru::new();
        lru.insert(old, List::Inactive);
        // The recycled slot's new id does not alias the old entry.
        assert!(!lru.contains(new));
        lru.mark_accessed(new); // no-op
        assert!(!lru.remove(new));
        assert_eq!(lru.len(), 1);
        // Inserting the new generation displaces the dead occupant.
        lru.insert(new, List::Active);
        assert_eq!(lru.len(), 1);
        assert!(lru.contains(new));
        assert!(!lru.contains(old));
        assert_eq!(lru.active_len(), 1);
        assert_eq!(lru.inactive_len(), 0);
    }

    #[test]
    fn aged_page_lands_at_inactive_mru_end() {
        // Matches the timestamp-ordered implementation: aging re-stamps
        // the page, so it enters the inactive list as *newest*.
        let mut lru = PageLru::new();
        lru.insert(FrameId(1), List::Inactive);
        lru.insert(FrameId(2), List::Active);
        lru.age_active(1);
        let order: Vec<FrameId> = lru.inactive_iter().collect();
        assert_eq!(order, vec![FrameId(1), FrameId(2)]);
    }

    #[test]
    fn promotion_rotates_to_active_mru_end() {
        let mut lru = PageLru::new();
        lru.insert(FrameId(1), List::Active);
        lru.insert(FrameId(2), List::Inactive);
        lru.mark_accessed(FrameId(2));
        lru.mark_accessed(FrameId(2)); // promote
        let order: Vec<FrameId> = lru.active_iter().collect();
        assert_eq!(order, vec![FrameId(1), FrameId(2)]);
        // A promoted page needs two fresh touches to promote again.
        assert_eq!(lru.age_active(2), 2);
        assert_eq!(
            lru.inactive_iter().collect::<Vec<_>>(),
            vec![FrameId(1), FrameId(2)]
        );
        lru.mark_accessed(FrameId(2));
        let out = lru.scan_inactive(2);
        assert_eq!(out.evict, vec![FrameId(1)]);
        assert_eq!(out.promoted, 1);
    }
}
