//! Error type for the simulated kernel.

use std::error::Error;
use std::fmt;

use kloc_mem::DiskOp;

use crate::obj::ObjectId;
use crate::vfs::{Fd, InodeId};

/// Errors returned by the simulated kernel's syscall layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KernelError {
    /// Path does not exist.
    NoEntry(String),
    /// Path already exists (create of an existing file).
    Exists(String),
    /// File descriptor is not open.
    BadFd(Fd),
    /// Inode id is stale or unknown.
    BadInode(InodeId),
    /// Object id is stale or unknown.
    BadObject(ObjectId),
    /// Operation not valid for this inode kind (e.g. `send` on a file).
    WrongKind(InodeId),
    /// Receive would block: no data queued on the socket.
    WouldBlock(Fd),
    /// The memory substrate failed the request.
    Mem(kloc_mem::MemError),
    /// A disk operation failed and exhausted its retry budget
    /// (kfault injection).
    Io(DiskOp),
    /// The simulated machine crashed (kfault injection): the run ends
    /// here; recovery replays the journal from the durable store.
    Crashed,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NoEntry(p) => write!(f, "no such file: {p}"),
            KernelError::Exists(p) => write!(f, "file exists: {p}"),
            KernelError::BadFd(fd) => write!(f, "bad file descriptor {fd}"),
            KernelError::BadInode(i) => write!(f, "unknown inode {i}"),
            KernelError::BadObject(o) => write!(f, "unknown kernel object {o}"),
            KernelError::WrongKind(i) => write!(f, "operation not valid for inode {i}"),
            KernelError::WouldBlock(fd) => write!(f, "no data ready on {fd}"),
            KernelError::Mem(e) => write!(f, "memory error: {e}"),
            KernelError::Io(op) => write!(f, "disk {op} failed after retries"),
            KernelError::Crashed => write!(f, "machine crashed"),
        }
    }
}

impl Error for KernelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KernelError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<kloc_mem::MemError> for KernelError {
    fn from(e: kloc_mem::MemError) -> Self {
        KernelError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_mem_errors() {
        let e: KernelError = kloc_mem::MemError::OutOfMemory.into();
        assert!(matches!(e, KernelError::Mem(_)));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KernelError>();
    }
}
