//! Tenant model: cgroup-style principals with per-tenant KLOC budgets.
//!
//! The paper evaluates KLOCs on consolidated servers where several
//! applications share one kernel (§5, Fig. 4): one tenant's kernel-object
//! churn can evict another's hot objects from fast memory. This module
//! supplies the kernel-side bookkeeping for that scenario:
//!
//! * [`TenantSpec`] — a registered tenant: identity, QoS class, an
//!   optional fast-tier budget for its kernel pages (the simulator's
//!   analog of the paper's `sys_kloc_memsize`), and an optional
//!   page-cache cap.
//! * [`TenantStats`] — per-tenant counters (page-cache residency,
//!   self-evictions, cross-tenant evictions caused/suffered, socket
//!   bytes) reported per run.
//! * [`TenantTable`] — dense, [`TenantId::index`]-keyed storage plus a
//!   per-tenant FIFO ledger of cached pages that backs self-eviction.
//!
//! Attribution rules (documented in DESIGN.md §12): an inode is owned by
//! the tenant that created it; page-cache residency is charged to the
//! inode's owner regardless of who faulted the page in; slab pages are
//! shared infrastructure and stay owned by [`TenantId::DEFAULT`];
//! relocatable (page-backed) kernel frames are stamped with the
//! allocating tenant.

use std::collections::VecDeque;

use kloc_mem::TenantId;

use crate::vfs::InodeId;

/// Quality-of-service class of a tenant, in descending strictness.
///
/// The class is descriptive metadata carried into reports; enforcement
/// comes from the numeric budgets on [`TenantSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum QosClass {
    /// Latency-critical: budgets sized to hold the whole hot set.
    Guaranteed,
    /// Throughput-oriented: budgeted, but sized for the average case.
    Burstable,
    /// Scavenger: runs in whatever is left over.
    BestEffort,
}

impl std::fmt::Display for QosClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QosClass::Guaranteed => write!(f, "guaranteed"),
            QosClass::Burstable => write!(f, "burstable"),
            QosClass::BestEffort => write!(f, "best-effort"),
        }
    }
}

/// A registered tenant: identity plus its resource envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TenantSpec {
    /// Tenant identity ([`TenantId::DEFAULT`] is the shared kernel).
    pub id: TenantId,
    /// Human-readable label used in reports and tables.
    pub name: String,
    /// QoS class (descriptive; see [`QosClass`]).
    pub qos: QosClass,
    /// Cap on the tenant's *kernel* pages resident on the fast tier
    /// (frames, i.e. the `sys_kloc_memsize` analog). `None` = uncapped.
    /// Enforced by budget-aware policies at placement time.
    pub fast_budget_frames: Option<u64>,
    /// Cap on the tenant's page-cache pages (across all inodes it
    /// owns). `None` = uncapped. Enforced by the kernel at insert time
    /// through self-eviction: an over-cap tenant reclaims its own
    /// oldest page, never a neighbour's.
    pub pc_budget: Option<u64>,
}

/// Per-tenant counters, all monotonic except [`TenantStats::pc_resident`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TenantStats {
    /// Page-cache pages ever inserted for inodes this tenant owns.
    pub pc_inserted: u64,
    /// Page-cache pages currently resident for inodes this tenant owns.
    pub pc_resident: u64,
    /// Pages this tenant reclaimed from itself to honor its own
    /// [`TenantSpec::pc_budget`].
    pub pc_self_evicted: u64,
    /// Global-shrinker evictions where this tenant's allocation evicted
    /// a page owned by a *different* tenant.
    pub cross_evictions_caused: u64,
    /// Global-shrinker evictions where a *different* tenant's allocation
    /// evicted a page this tenant owned.
    pub cross_evictions_suffered: u64,
    /// Bytes this tenant sent on sockets.
    pub tx_bytes: u64,
    /// Bytes this tenant received from sockets.
    pub rx_bytes: u64,
    /// Pages evicted from this tenant by QoS-aware degradation: either
    /// preempted by QoS-ordered reclaim (lower classes pay first while
    /// a tier fault is active, DESIGN.md §13) or self-evicted to honor
    /// a mid-run budget shrink. Stays 0 outside degraded operation.
    #[cfg_attr(feature = "serde", serde(default))]
    pub preempted: u64,
}

/// Dense tenant registry: specs, stats, and the per-tenant page FIFO.
///
/// Everything is keyed by [`TenantId::index`] and grown on demand, so
/// single-tenant runs pay one lazily-grown slot for
/// [`TenantId::DEFAULT`] and nothing else. Iteration orders are vector
/// orders — deterministic by construction.
#[derive(Debug, Default)]
pub struct TenantTable {
    specs: Vec<Option<TenantSpec>>,
    stats: Vec<TenantStats>,
    /// Per-tenant FIFO of (inode, page index) insertions, used to pick
    /// self-eviction victims. Entries go stale when the global shrinker
    /// or an unlink removes the page first; stale entries are skipped
    /// lazily at pop time.
    ledgers: Vec<VecDeque<(InodeId, u64)>>,
}

impl TenantTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        TenantTable::default()
    }

    /// Registers (or replaces) a tenant spec.
    pub fn register(&mut self, spec: TenantSpec) {
        let i = spec.id.index();
        if i >= self.specs.len() {
            self.specs.resize(i + 1, None);
        }
        self.specs[i] = Some(spec);
    }

    /// The spec registered for `id`, if any.
    pub fn spec(&self, id: TenantId) -> Option<&TenantSpec> {
        self.specs.get(id.index())?.as_ref()
    }

    /// Registered specs in [`TenantId`] order.
    pub fn specs(&self) -> impl Iterator<Item = &TenantSpec> {
        self.specs.iter().flatten()
    }

    /// Number of registered tenants.
    pub fn registered(&self) -> usize {
        self.specs.iter().flatten().count()
    }

    /// The page-cache cap for `id` (`None` when unregistered or
    /// uncapped).
    pub fn pc_budget(&self, id: TenantId) -> Option<u64> {
        self.spec(id)?.pc_budget
    }

    /// A copy of `id`'s counters (zeros when the tenant never acted).
    pub fn stats(&self, id: TenantId) -> TenantStats {
        self.stats.get(id.index()).copied().unwrap_or_default()
    }

    /// Number of allocated stats slots (a dense upper bound on the
    /// tenant ids seen so far; used by the ksan recount).
    pub fn stats_len(&self) -> usize {
        self.stats.len()
    }

    /// Mutable counters for `id`, grown on demand.
    pub fn stats_mut(&mut self, id: TenantId) -> &mut TenantStats {
        let i = id.index();
        if i >= self.stats.len() {
            self.stats.resize(i + 1, TenantStats::default());
        }
        &mut self.stats[i]
    }

    /// Ids with any recorded activity, in [`TenantId`] order.
    pub fn active_ids(&self) -> impl Iterator<Item = TenantId> + '_ {
        let n = self.specs.len().max(self.stats.len());
        (0..n).filter_map(move |i| {
            let id = TenantId(i as u16);
            let used = self.specs.get(i).is_some_and(Option::is_some)
                || self
                    .stats
                    .get(i)
                    .is_some_and(|s| *s != TenantStats::default());
            used.then_some(id)
        })
    }

    /// Records a page-cache insertion for `owner` at (`ino`, `idx`).
    /// The FIFO ledger is only maintained for tenants with a
    /// [`TenantSpec::pc_budget`] — uncapped tenants (and single-tenant
    /// runs) never self-evict, so tracking their insert order would
    /// only grow memory.
    pub fn note_pc_insert(&mut self, owner: TenantId, ino: InodeId, idx: u64) {
        let capped = self.pc_budget(owner).is_some();
        let s = self.stats_mut(owner);
        s.pc_inserted += 1;
        s.pc_resident += 1;
        if capped {
            let i = owner.index();
            if i >= self.ledgers.len() {
                self.ledgers.resize_with(i + 1, VecDeque::new);
            }
            self.ledgers[i].push_back((ino, idx));
        }
    }

    /// Records `count` page-cache removals for `owner`.
    pub fn note_pc_removed(&mut self, owner: TenantId, count: u64) {
        let s = self.stats_mut(owner);
        debug_assert!(s.pc_resident >= count, "pc_resident underflow");
        s.pc_resident = s.pc_resident.saturating_sub(count);
    }

    /// Pops `owner`'s oldest ledger entry. The caller skips entries
    /// whose page is no longer cached (the ledger is append-only and
    /// not purged on removal).
    pub fn pop_oldest(&mut self, owner: TenantId) -> Option<(InodeId, u64)> {
        self.ledgers.get_mut(owner.index())?.pop_front()
    }

    /// Applies a `sys_kloc_memsize`-style mid-run resize to `id`'s
    /// budgets (`None` = uncapped). Returns `false` when `id` was never
    /// registered — resizing an unknown tenant is a configuration
    /// error, not a registration.
    ///
    /// Only the caps change here; enforcement is the caller's job
    /// (the kernel self-evicts gradually, DESIGN.md §13). One
    /// consequence of the capped-only ledger: a tenant resized from
    /// uncapped to capped has no insert history, so its pre-resize
    /// pages can only leave through the global shrinker or unlink —
    /// inserts from the resize onward are ledgered and enforced.
    pub fn resize_budget(
        &mut self,
        id: TenantId,
        pc_budget: Option<u64>,
        fast_budget_frames: Option<u64>,
    ) -> bool {
        let Some(spec) = self.specs.get_mut(id.index()).and_then(Option::as_mut) else {
            return false;
        };
        spec.pc_budget = pc_budget;
        spec.fast_budget_frames = fast_budget_frames;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u16, pc: Option<u64>) -> TenantSpec {
        TenantSpec {
            id: TenantId(id),
            name: format!("t{id}"),
            qos: QosClass::Burstable,
            fast_budget_frames: None,
            pc_budget: pc,
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut t = TenantTable::new();
        t.register(spec(2, Some(8)));
        assert_eq!(t.registered(), 1);
        assert_eq!(t.spec(TenantId(2)).unwrap().name, "t2");
        assert_eq!(t.pc_budget(TenantId(2)), Some(8));
        assert_eq!(t.pc_budget(TenantId(0)), None);
        assert_eq!(t.spec(TenantId(9)), None);
    }

    #[test]
    fn stats_grow_on_demand_and_ledger_is_fifo() {
        let mut t = TenantTable::new();
        let id = TenantId(3);
        t.register(spec(3, Some(4)));
        assert_eq!(t.stats(id), TenantStats::default());
        t.note_pc_insert(id, InodeId(7), 0);
        t.note_pc_insert(id, InodeId(7), 1);
        assert_eq!(t.stats(id).pc_inserted, 2);
        assert_eq!(t.stats(id).pc_resident, 2);
        assert_eq!(t.pop_oldest(id), Some((InodeId(7), 0)));
        assert_eq!(t.pop_oldest(id), Some((InodeId(7), 1)));
        assert_eq!(t.pop_oldest(id), None);
        t.note_pc_removed(id, 2);
        assert_eq!(t.stats(id).pc_resident, 0);
    }

    #[test]
    fn uncapped_tenants_have_no_ledger() {
        let mut t = TenantTable::new();
        let id = TenantId(1);
        t.register(spec(1, None));
        t.note_pc_insert(id, InodeId(2), 0);
        assert_eq!(t.stats(id).pc_resident, 1);
        assert_eq!(t.pop_oldest(id), None, "no cap, no FIFO tracking");
    }

    #[test]
    fn active_ids_cover_specs_and_stats() {
        let mut t = TenantTable::new();
        t.register(spec(1, None));
        t.stats_mut(TenantId(4)).tx_bytes = 10;
        let ids: Vec<TenantId> = t.active_ids().collect();
        assert_eq!(ids, vec![TenantId(1), TenantId(4)]);
    }

    #[test]
    fn qos_display() {
        assert_eq!(QosClass::Guaranteed.to_string(), "guaranteed");
        assert_eq!(QosClass::BestEffort.to_string(), "best-effort");
    }

    #[test]
    fn resize_budget_updates_caps_and_rejects_unknown() {
        let mut t = TenantTable::new();
        t.register(spec(2, Some(8)));
        assert!(t.resize_budget(TenantId(2), Some(4), Some(16)));
        assert_eq!(t.pc_budget(TenantId(2)), Some(4));
        assert_eq!(t.spec(TenantId(2)).unwrap().fast_budget_frames, Some(16));
        // Growing back to uncapped.
        assert!(t.resize_budget(TenantId(2), None, None));
        assert_eq!(t.pc_budget(TenantId(2)), None);
        // Unknown tenants are a configuration error, not a registration.
        assert!(!t.resize_budget(TenantId(5), Some(1), None));
        assert_eq!(t.spec(TenantId(5)), None);
    }

    #[test]
    fn uncapped_to_capped_resize_ledgers_only_new_inserts() {
        let mut t = TenantTable::new();
        let id = TenantId(1);
        t.register(spec(1, None));
        t.note_pc_insert(id, InodeId(2), 0);
        assert!(t.resize_budget(id, Some(1), None));
        assert_eq!(t.pop_oldest(id), None, "pre-resize pages unledgered");
        t.note_pc_insert(id, InodeId(2), 1);
        assert_eq!(t.pop_oldest(id), Some((InodeId(2), 1)));
    }
}
