//! Calibration constants for the simulated kernel.
//!
//! Everything the cost model charges that is not a memory access lives
//! here, so experiments can state exactly what was assumed. Defaults are
//! calibrated so the motivation numbers of the paper come out at the
//! right magnitude (kernel-time fractions of Fig. 2c, object lifetimes of
//! Fig. 2d, LRU scan throughput of §3.3).

use kloc_mem::Nanos;

/// Tunable cost and sizing parameters of the kernel model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KernelParams {
    /// Fixed syscall entry/exit CPU cost.
    pub syscall_base: Nanos,
    /// CPU cost of a slab allocation (fast path; paper §3.3 notes slab
    /// allocation speed is why knodes use it).
    pub slab_alloc_cpu: Nanos,
    /// CPU cost of an allocation through the relocatable KLOC interface
    /// (slightly slower than slab: VMA bookkeeping, §4.4).
    pub kvma_alloc_cpu: Nanos,
    /// CPU cost of a page allocation from the page allocator.
    pub page_alloc_cpu: Nanos,
    /// CPU cost to free any allocation.
    pub free_cpu: Nanos,
    /// Per-page LRU scan cost: the paper measures 2 s per million pages
    /// on their Xeon (§3.3) = 2 µs/page.
    pub lru_scan_per_page: Nanos,
    /// Journal: maximum journaled buffers per transaction before a
    /// commit is forced.
    pub journal_txn_max: usize,
    /// Number of dirty page-cache pages that triggers background
    /// writeback.
    pub writeback_threshold: usize,
    /// Pages per writeback bio (per-bio object allocation granularity).
    pub pages_per_bio: usize,
    /// Page-cache capacity budget in frames; beyond it, clean pages are
    /// reclaimed LRU-first (mimics kswapd keeping the cache bounded).
    pub page_cache_budget: u64,
    /// File-offset span covered by one extent object (bytes).
    pub extent_span: u64,
    /// File-offset span covered by one radix-tree node (pages).
    pub radix_fanout: u64,
    /// Network: CPU cost in the NIC driver per packet.
    pub net_driver_cpu: Nanos,
    /// Network: CPU cost in the IP layer per packet.
    pub net_ip_cpu: Nanos,
    /// Network: CPU cost in the TCP layer per packet, including socket
    /// demux when early demux is off.
    pub net_tcp_cpu: Nanos,
    /// Network: TCP-layer CPU saved per packet when the driver already
    /// demuxed the socket (paper §4.2.3).
    pub net_early_demux_saving: Nanos,
    /// Payload bytes per packet (MTU-ish).
    pub packet_bytes: u64,
    /// Readahead: maximum prefetch window in pages.
    pub readahead_max: u64,
    /// blk-mq: maximum retries of a failed disk operation before the
    /// error surfaces as [`crate::KernelError::Io`].
    pub io_max_retries: u32,
    /// blk-mq: backoff before the first retry; doubles per attempt.
    pub io_retry_base: Nanos,
    /// blk-mq: ceiling on the per-attempt retry backoff.
    pub io_retry_cap: Nanos,
    /// Back application memory with transparent huge pages (paper §5:
    /// "KLOCs should provide higher performance gains with THP, although
    /// this hypothesis needs to be tested in future studies" — the THP
    /// ablation tests it).
    pub thp_app: bool,
    /// Shard count for the sharded hot-path structures (page-cache LRU,
    /// cache reverse map, frame free lists). Rounded up to a power of
    /// two. Sharding is structural only: reports are byte-identical at
    /// any value (the shards share one recency-stamp order).
    #[cfg_attr(feature = "serde", serde(default = "default_shards"))]
    pub shards: u32,
    /// Charge runs of accesses with no intervening KLOC hook through
    /// [`kloc_mem::MemorySystem::access_batch`] (one clock advance, one
    /// trace charge per run) instead of one call per page. Structural
    /// only: the batched cost is the exact sum of the per-access costs,
    /// so reports and traces are byte-identical either way.
    #[cfg_attr(feature = "serde", serde(default = "default_batch_accesses"))]
    pub batch_accesses: bool,
    /// Tier drain: maximum frames live-migrated off an offlining tier
    /// per engine tick (DESIGN.md §13). Clamped to at least 1 at the
    /// drain site — a zero budget would stall the drain forever.
    #[cfg_attr(feature = "serde", serde(default = "default_drain_budget_frames"))]
    pub drain_budget_frames: u64,
    /// Tier drain: backoff before the first retry of a faulted drain
    /// migration; doubles per attempt. Clamped to at least 1 ns.
    #[cfg_attr(feature = "serde", serde(default = "default_drain_retry_base"))]
    pub drain_retry_base: Nanos,
    /// Tier drain: ceiling on the per-attempt drain retry backoff.
    /// Clamped to at least the base.
    #[cfg_attr(feature = "serde", serde(default = "default_drain_retry_cap"))]
    pub drain_retry_cap: Nanos,
    /// Budget resize: maximum pages self-evicted immediately when a
    /// `sys_kloc_memsize`-style shrink lands; the remainder is enforced
    /// gradually at insert time rather than stalling the run. Clamped
    /// to at least 1.
    #[cfg_attr(feature = "serde", serde(default = "default_resize_evict_step"))]
    pub resize_evict_step: u64,
    /// Always use QoS-ordered reclaim and divert-to-slow (BestEffort
    /// preempted first, Guaranteed last), not just while a tier fault
    /// window is open. Off by default: single-tenant runs and the §12
    /// isolation experiment rely on plain self-then-LRU reclaim.
    #[cfg_attr(feature = "serde", serde(default))]
    pub qos_reclaim: bool,
}

#[cfg(feature = "serde")]
fn default_shards() -> u32 {
    4
}

#[cfg(feature = "serde")]
fn default_batch_accesses() -> bool {
    true
}

#[cfg(feature = "serde")]
fn default_drain_budget_frames() -> u64 {
    128
}

#[cfg(feature = "serde")]
fn default_drain_retry_base() -> Nanos {
    Nanos::from_micros(20)
}

#[cfg(feature = "serde")]
fn default_drain_retry_cap() -> Nanos {
    Nanos::from_micros(160)
}

#[cfg(feature = "serde")]
fn default_resize_evict_step() -> u64 {
    64
}

impl Default for KernelParams {
    fn default() -> Self {
        KernelParams {
            syscall_base: Nanos::new(250),
            slab_alloc_cpu: Nanos::new(90),
            kvma_alloc_cpu: Nanos::new(140),
            page_alloc_cpu: Nanos::new(180),
            free_cpu: Nanos::new(60),
            lru_scan_per_page: Nanos::from_micros(2),
            journal_txn_max: 64,
            writeback_threshold: 256,
            pages_per_bio: 16,
            page_cache_budget: 4096,
            extent_span: 1 << 20,
            radix_fanout: 64,
            net_driver_cpu: Nanos::new(150),
            net_ip_cpu: Nanos::new(120),
            net_tcp_cpu: Nanos::new(350),
            net_early_demux_saving: Nanos::new(250),
            packet_bytes: 1448,
            readahead_max: 32,
            io_max_retries: 5,
            io_retry_base: Nanos::from_micros(50),
            io_retry_cap: Nanos::from_micros(400),
            thp_app: false,
            shards: 4,
            batch_accesses: true,
            drain_budget_frames: 128,
            drain_retry_base: Nanos::from_micros(20),
            drain_retry_cap: Nanos::from_micros(160),
            resize_evict_step: 64,
            qos_reclaim: false,
        }
    }
}

impl KernelParams {
    /// Scales the capacity-like parameters (page-cache budget, writeback
    /// threshold) by `factor`, for larger experiment scales.
    pub fn scaled(mut self, factor: u64) -> Self {
        self.page_cache_budget *= factor;
        self.writeback_threshold = (self.writeback_threshold as u64 * factor) as usize;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_scan_cost() {
        let p = KernelParams::default();
        // 2 s per million pages => 2 us per page.
        assert_eq!(p.lru_scan_per_page * 1_000_000, Nanos::from_secs(2));
    }

    #[test]
    fn kvma_is_slower_than_slab_but_same_magnitude() {
        let p = KernelParams::default();
        assert!(p.kvma_alloc_cpu > p.slab_alloc_cpu);
        assert!(p.kvma_alloc_cpu.as_nanos() < 3 * p.slab_alloc_cpu.as_nanos());
    }

    #[test]
    fn retry_backoff_stays_bounded() {
        let p = KernelParams::default();
        // Even the last retry's doubled backoff respects the cap.
        let worst = p.io_retry_base * (1 << (p.io_max_retries - 1));
        assert!(p.io_retry_cap < worst, "cap actually binds");
        assert!(p.io_retry_cap >= p.io_retry_base);
    }

    #[test]
    fn scaled_multiplies_budgets() {
        let p = KernelParams::default().scaled(4);
        assert_eq!(p.page_cache_budget, 4 * 4096);
        assert_eq!(p.writeback_threshold, 4 * 256);
    }

    #[test]
    fn drain_backoff_defaults_stay_bounded() {
        let p = KernelParams::default();
        // Same shape as the blk-mq retry knobs: the cap binds before
        // the doubled backoff runs away.
        let worst = p.drain_retry_base * (1 << 4);
        assert!(p.drain_retry_cap < worst, "cap actually binds");
        assert!(p.drain_retry_cap >= p.drain_retry_base);
        assert!(p.drain_budget_frames >= 1);
        assert!(p.resize_evict_step >= 1);
        assert!(!p.qos_reclaim, "QoS reclaim is fault-gated by default");
    }
}
