//! Kernel-level statistics.
//!
//! These counters regenerate the paper's motivation study: per-object-type
//! footprints (Fig. 2a), OS vs application allocation shares (Fig. 2b),
//! and per-type lifetimes (Fig. 2d; the substrate's per-`PageKind`
//! lifetimes complement these).

use std::collections::BTreeMap;

use kloc_mem::Nanos;

use crate::obj::{KernelObjectType, ObjectCategory};

/// Counters for one kernel object type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TypeStats {
    /// Objects ever allocated.
    pub allocated: u64,
    /// Bytes ever allocated.
    pub bytes: u64,
    /// Objects freed.
    pub freed: u64,
    /// Sum of freed-object lifetimes.
    pub lifetime_total: Nanos,
}

impl TypeStats {
    /// Live objects right now.
    pub fn live(&self) -> u64 {
        self.allocated - self.freed
    }

    /// Mean lifetime of freed objects.
    pub fn mean_lifetime(&self) -> Nanos {
        if self.freed == 0 {
            Nanos::ZERO
        } else {
            self.lifetime_total / self.freed
        }
    }

    /// Cumulative footprint in 4 KB page equivalents (how Fig. 2a counts
    /// "pages allocated to kernel objects").
    pub fn footprint_pages(&self) -> u64 {
        self.bytes.div_ceil(kloc_mem::PAGE_SIZE)
    }
}

/// Syscall classes counted by the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum Syscall {
    /// `create`
    Create,
    /// `open`
    Open,
    /// `read`
    Read,
    /// `write`
    Write,
    /// `fsync`
    Fsync,
    /// `close`
    Close,
    /// `unlink`
    Unlink,
    /// `socket`
    Socket,
    /// `send`
    Send,
    /// `recv`
    Recv,
    /// `mkdir`
    Mkdir,
    /// `readdir`
    Readdir,
}

/// All kernel-side counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KernelStats {
    /// Per-object-type counters.
    pub types: BTreeMap<KernelObjectType, TypeStats>,
    /// Syscall counts.
    pub syscalls: BTreeMap<Syscall, u64>,
    /// Application pages allocated (for the Fig. 2a/2b user-vs-OS split).
    pub app_pages_allocated: u64,
    /// Application pages freed.
    pub app_pages_freed: u64,
    /// Page-cache lookups that hit.
    pub cache_hits: u64,
    /// Page-cache lookups that missed (went to disk).
    pub cache_misses: u64,
    /// Pages written back to disk.
    pub writeback_pages: u64,
    /// Clean pages reclaimed by the cache-budget shrinker.
    pub reclaimed_pages: u64,
    /// Dentry-cache lookup hits.
    pub dentry_hits: u64,
    /// Dentry-cache lookup misses.
    pub dentry_misses: u64,
}

impl KernelStats {
    /// Records an object allocation.
    pub fn on_alloc(&mut self, ty: KernelObjectType) {
        let t = self.types.entry(ty).or_default();
        t.allocated += 1;
        t.bytes += ty.size();
    }

    /// Records an object free with its lifetime.
    pub fn on_free(&mut self, ty: KernelObjectType, lifetime: Nanos) {
        let t = self.types.entry(ty).or_default();
        t.freed += 1;
        t.lifetime_total += lifetime;
    }

    /// Records a syscall.
    pub fn on_syscall(&mut self, sc: Syscall) {
        *self.syscalls.entry(sc).or_default() += 1;
        kloc_trace::with_counters(|c| c.syscalls += 1);
    }

    /// Counter for one type.
    pub fn ty(&self, ty: KernelObjectType) -> TypeStats {
        self.types.get(&ty).copied().unwrap_or_default()
    }

    /// Cumulative kernel-object footprint in page equivalents.
    pub fn kernel_footprint_pages(&self) -> u64 {
        self.types.values().map(|t| t.footprint_pages()).sum()
    }

    /// Cumulative footprint per coarse category (Fig. 2a bars).
    pub fn footprint_by_category(&self) -> BTreeMap<ObjectCategory, u64> {
        let mut out = BTreeMap::new();
        for (&ty, t) in &self.types {
            *out.entry(ty.category()).or_default() += t.footprint_pages();
        }
        out
    }

    /// Fraction of cumulative page allocations that were kernel objects
    /// (Fig. 2b's "percentage of page allocations in the OS").
    pub fn kernel_alloc_fraction(&self) -> f64 {
        let kernel = self.kernel_footprint_pages() as f64;
        let total = kernel + self.app_pages_allocated as f64;
        if total == 0.0 {
            0.0
        } else {
            kernel / total
        }
    }

    /// Page-cache hit ratio.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_and_lifetime() {
        let mut s = KernelStats::default();
        s.on_alloc(KernelObjectType::Dentry);
        s.on_alloc(KernelObjectType::Dentry);
        s.on_free(KernelObjectType::Dentry, Nanos::from_millis(10));
        let t = s.ty(KernelObjectType::Dentry);
        assert_eq!(t.live(), 1);
        assert_eq!(t.mean_lifetime(), Nanos::from_millis(10));
        assert_eq!(t.bytes, 2 * 192);
    }

    #[test]
    fn footprint_rounds_up_to_pages() {
        let mut s = KernelStats::default();
        s.on_alloc(KernelObjectType::Extent); // 40 bytes -> 1 page equivalent
        assert_eq!(s.ty(KernelObjectType::Extent).footprint_pages(), 1);
        s.on_alloc(KernelObjectType::PageCache);
        assert_eq!(s.kernel_footprint_pages(), 2);
    }

    #[test]
    fn category_breakdown() {
        let mut s = KernelStats::default();
        s.on_alloc(KernelObjectType::PageCache);
        s.on_alloc(KernelObjectType::JournalBlock);
        s.on_alloc(KernelObjectType::Sock);
        let by_cat = s.footprint_by_category();
        assert_eq!(by_cat[&ObjectCategory::PageCache], 1);
        assert_eq!(by_cat[&ObjectCategory::Journal], 1);
        assert_eq!(by_cat[&ObjectCategory::Network], 1);
    }

    #[test]
    fn kernel_alloc_fraction() {
        let mut s = KernelStats::default();
        s.on_alloc(KernelObjectType::PageCache); // 1 page
        s.app_pages_allocated = 3;
        assert!((s.kernel_alloc_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hit_ratio_handles_zero() {
        let s = KernelStats::default();
        assert_eq!(s.cache_hit_ratio(), 0.0);
    }
}
