//! Virtual filesystem layer: inodes, paths, dentries, file descriptors.
//!
//! In Unix "everything is a file": both regular files and sockets get an
//! inode, which is exactly why the paper anchors KLOCs to inodes — one
//! KLOC per inode groups all related kernel objects (§1, Fig. 1).
//!
//! This module holds the naming and lifetime bookkeeping; object
//! allocation and cost charging happen in the [`crate::Kernel`] facade.

use std::collections::HashMap;
use std::fmt;

use kloc_mem::{Nanos, TenantId};

use crate::extent::ExtentTree;
use crate::net::RxQueue;
use crate::obj::ObjectId;
use crate::pagecache::PageCache;

/// Identifier of an inode (file or socket). Never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InodeId(pub u64);

impl fmt::Display for InodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inode{}", self.0)
    }
}

/// A file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Fd(pub u64);

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// What an inode names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum InodeKind {
    /// A regular file on the filesystem.
    RegularFile,
    /// A directory.
    Directory,
    /// A network socket.
    Socket,
}

/// One inode and all per-inode kernel state.
#[derive(Debug)]
pub struct Inode {
    /// Inode id.
    pub id: InodeId,
    /// File or socket.
    pub kind: InodeKind,
    /// Tenant that created the inode — the attribution anchor for the
    /// knode's page-cache residency and cross-tenant eviction accounting
    /// ([`TenantId::DEFAULT`] in single-tenant runs).
    pub owner: TenantId,
    /// File size in bytes (0 for sockets).
    pub size: u64,
    /// Link count; 0 means unlinked (destroyed when last handle closes).
    pub nlink: u32,
    /// Open file handles.
    pub open_count: u32,
    /// The inode slab object.
    pub inode_obj: ObjectId,
    /// The dentry slab object (files only; evictable).
    pub dentry_obj: Option<ObjectId>,
    /// The sock object (sockets only).
    pub sock_obj: Option<ObjectId>,
    /// Page cache of this inode.
    pub cache: PageCache,
    /// Extent map (files only).
    pub extents: ExtentTree,
    /// Receive queue (sockets only).
    pub rx: RxQueue,
    /// Creation time.
    pub created_at: Nanos,
    /// Last syscall activity on this inode.
    pub last_activity: Nanos,
}

impl Inode {
    /// Whether any process holds the inode open.
    pub fn is_open(&self) -> bool {
        self.open_count > 0
    }
}

/// An open file description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenFile {
    /// Inode this handle points at.
    pub inode: InodeId,
    /// The `struct file` slab object.
    pub file_obj: ObjectId,
}

/// The VFS tables: path namespace, inode table, fd table.
///
/// Inode and fd ids are sequential and never reused, so both tables are
/// id-indexed vectors (destroyed entries leave `None` holes) rather than
/// hash maps: fd resolution and inode lookup happen on every simulated
/// syscall, and an array index beats hashing there.
#[derive(Debug, Default)]
pub struct Vfs {
    inodes: Vec<Option<Inode>>,
    live_inodes: usize,
    paths: HashMap<String, InodeId>,
    fds: Vec<Option<OpenFile>>,
    live_fds: usize,
    next_inode: u64,
}

impl Vfs {
    /// Creates empty tables.
    pub fn new() -> Self {
        Vfs::default()
    }

    /// Number of live inodes (open, cached, or unlinked-but-open).
    pub fn inode_count(&self) -> usize {
        self.live_inodes
    }

    /// Number of open file descriptors.
    pub fn open_fds(&self) -> usize {
        self.live_fds
    }

    /// Allocates the next inode id.
    pub fn next_inode_id(&mut self) -> InodeId {
        let id = InodeId(self.next_inode);
        self.next_inode += 1;
        id
    }

    /// Registers a new inode.
    ///
    /// # Panics
    /// Panics if the id is already present.
    pub fn insert_inode(&mut self, inode: Inode) {
        let id = inode.id;
        let i = id.0 as usize;
        if i >= self.inodes.len() {
            self.inodes.resize_with(i + 1, || None);
        }
        assert!(self.inodes[i].is_none(), "{id} already registered");
        self.inodes[i] = Some(inode);
        self.live_inodes += 1;
    }

    /// Removes an inode record.
    pub fn remove_inode(&mut self, id: InodeId) -> Option<Inode> {
        let inode = self.inodes.get_mut(id.0 as usize)?.take();
        if inode.is_some() {
            self.live_inodes -= 1;
        }
        inode
    }

    /// Looks up an inode.
    pub fn inode(&self, id: InodeId) -> Option<&Inode> {
        self.inodes.get(id.0 as usize)?.as_ref()
    }

    /// Looks up an inode mutably.
    pub fn inode_mut(&mut self, id: InodeId) -> Option<&mut Inode> {
        self.inodes.get_mut(id.0 as usize)?.as_mut()
    }

    /// Iterates all live inodes in id order.
    pub fn inodes(&self) -> impl Iterator<Item = &Inode> {
        self.inodes.iter().flatten()
    }

    /// Resolves a path.
    pub fn lookup_path(&self, path: &str) -> Option<InodeId> {
        self.paths.get(path).copied()
    }

    /// Binds a path to an inode.
    ///
    /// # Panics
    /// Panics if the path is already bound.
    pub fn bind_path(&mut self, path: &str, inode: InodeId) {
        let prev = self.paths.insert(path.to_owned(), inode);
        assert!(prev.is_none(), "path {path} already bound");
    }

    /// Unbinds a path, returning the inode it named.
    pub fn unbind_path(&mut self, path: &str) -> Option<InodeId> {
        self.paths.remove(path)
    }

    /// Opens a new descriptor on `inode` backed by `file_obj`.
    pub fn open_fd(&mut self, inode: InodeId, file_obj: ObjectId) -> Fd {
        let fd = Fd(self.fds.len() as u64);
        self.fds.push(Some(OpenFile { inode, file_obj }));
        self.live_fds += 1;
        fd
    }

    /// Resolves a descriptor.
    pub fn fd(&self, fd: Fd) -> Option<&OpenFile> {
        self.fds.get(fd.0 as usize)?.as_ref()
    }

    /// Closes a descriptor, returning its description.
    pub fn close_fd(&mut self, fd: Fd) -> Option<OpenFile> {
        let of = self.fds.get_mut(fd.0 as usize)?.take();
        if of.is_some() {
            self.live_fds -= 1;
        }
        of
    }
}

#[cfg(feature = "ksan")]
impl Vfs {
    /// Cross-checks the VFS tables: the live counters against the inode
    /// and fd tables, every bound path against a live inode, and every
    /// open descriptor against a live inode. Observation only.
    pub fn ksan_audit(&self, out: &mut Vec<kloc_mem::ksan::Violation>) {
        use kloc_mem::ksan::Violation;
        let live = self.inodes.iter().filter(|i| i.is_some()).count();
        if live != self.live_inodes {
            out.push(Violation::new(
                "Vfs.live_inodes <-> Vfs.inodes",
                "inode table",
                "the live counter equals the occupied inode slots",
                format!("{live} occupied"),
                format!("live_inodes = {}", self.live_inodes),
            ));
        }
        let open = self.fds.iter().filter(|f| f.is_some()).count();
        if open != self.live_fds {
            out.push(Violation::new(
                "Vfs.live_fds <-> Vfs.fds",
                "fd table",
                "the fd counter equals the occupied fd slots",
                format!("{open} occupied"),
                format!("live_fds = {}", self.live_fds),
            ));
        }
        // Sorted for deterministic reports; the path map itself is only
        // iterated here, inside the audit.
        let mut dangling: Vec<&str> = self
            .paths
            .iter() // lint: ordered-ok — violations are sorted below.
            .filter(|(_, &ino)| self.inode(ino).is_none())
            .map(|(p, _)| p.as_str())
            .collect();
        dangling.sort_unstable();
        for path in dangling {
            out.push(Violation::new(
                "Vfs.paths <-> Vfs.inodes",
                format!("path {path:?}"),
                "every bound path names a live inode",
                "live inode".to_owned(),
                "dangling".to_owned(),
            ));
        }
        for of in self.fds.iter().flatten() {
            if self.inode(of.inode).is_none() {
                out.push(Violation::new(
                    "Vfs.fds <-> Vfs.inodes",
                    format!("{}", of.inode),
                    "every open descriptor names a live inode",
                    "live inode".to_owned(),
                    "destroyed".to_owned(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj::ObjectId;

    fn mk_inode(id: InodeId, kind: InodeKind) -> Inode {
        Inode {
            id,
            kind,
            owner: TenantId::DEFAULT,
            size: 0,
            nlink: 1,
            open_count: 0,
            inode_obj: ObjectId(0),
            dentry_obj: None,
            sock_obj: None,
            cache: PageCache::new(64),
            extents: ExtentTree::new(1 << 20),
            rx: RxQueue::new(),
            created_at: Nanos::ZERO,
            last_activity: Nanos::ZERO,
        }
    }

    #[test]
    fn inode_registration_round_trip() {
        let mut vfs = Vfs::new();
        let id = vfs.next_inode_id();
        let id2 = vfs.next_inode_id();
        assert_ne!(id, id2);
        vfs.insert_inode(mk_inode(id, InodeKind::RegularFile));
        assert_eq!(vfs.inode_count(), 1);
        assert!(vfs.inode(id).is_some());
        let inode = vfs.remove_inode(id).unwrap();
        assert_eq!(inode.id, id);
        assert!(vfs.inode(id).is_none());
    }

    #[test]
    fn path_binding() {
        let mut vfs = Vfs::new();
        let id = vfs.next_inode_id();
        vfs.bind_path("/a/b", id);
        assert_eq!(vfs.lookup_path("/a/b"), Some(id));
        assert_eq!(vfs.lookup_path("/a/c"), None);
        assert_eq!(vfs.unbind_path("/a/b"), Some(id));
        assert_eq!(vfs.lookup_path("/a/b"), None);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let mut vfs = Vfs::new();
        let id = vfs.next_inode_id();
        vfs.bind_path("/x", id);
        vfs.bind_path("/x", id);
    }

    #[test]
    fn fd_lifecycle() {
        let mut vfs = Vfs::new();
        let ino = vfs.next_inode_id();
        let fd = vfs.open_fd(ino, ObjectId(5));
        assert_eq!(vfs.open_fds(), 1);
        let of = vfs.fd(fd).copied().unwrap();
        assert_eq!(of.inode, ino);
        assert_eq!(of.file_obj, ObjectId(5));
        assert!(vfs.close_fd(fd).is_some());
        assert!(vfs.close_fd(fd).is_none());
        assert_eq!(vfs.open_fds(), 0);
    }

    #[test]
    fn is_open_tracks_count() {
        let mut i = mk_inode(InodeId(1), InodeKind::Socket);
        assert!(!i.is_open());
        i.open_count = 2;
        assert!(i.is_open());
    }
}
