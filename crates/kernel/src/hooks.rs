//! Policy hook interface between the kernel and tiering policies.
//!
//! The paper's KLOC prototype intercepts existing kernel code paths —
//! syscall entry, object allocation sites (400+ redirected allocation
//! sites, §1), LRU bookkeeping — to keep knodes up to date and to decide
//! placement. This crate inverts that dependency: the simulated kernel
//! calls *out* through [`KernelHooks`] at every one of those points, and
//! the policies in `kloc-policy` (optionally wrapping the KLOC registry
//! from `kloc-core`) implement the trait.
//!
//! All kernel entry points take a [`Ctx`], which bundles the memory
//! system, the hooks, and the CPU performing the operation.

use kloc_mem::{FrameId, MemorySystem, PageKind, TenantId, TierId};

use crate::obj::{KernelObjectType, ObjectId, ObjectInfo};
use crate::vfs::InodeId;

/// Identifier of a (simulated) CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CpuId(pub u16);

impl std::fmt::Display for CpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// A request for one new page frame, given to [`KernelHooks::place_page`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRequest {
    /// Page class being allocated.
    pub kind: PageKind,
    /// Kernel object type the page will hold (None for app pages).
    pub ty: Option<KernelObjectType>,
    /// Owning file/socket inode, when known at allocation time.
    pub inode: Option<InodeId>,
    /// Whether this allocation is speculative readahead (paper §4.4's
    /// prefetcher integration).
    pub readahead: bool,
    /// CPU performing the allocation.
    pub cpu: CpuId,
    /// Tenant on whose behalf the allocation is made
    /// ([`TenantId::DEFAULT`] in single-tenant runs). Budget-aware
    /// policies compare the tenant's fast-tier residency against its
    /// budget when choosing the placement.
    pub tenant: TenantId,
}

/// Tier preference order for a new page. The kernel tries tiers in order
/// and takes the first with room.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Tiers to try, in order.
    pub preference: Vec<TierId>,
}

impl Placement {
    /// Prefer the fast tier, spill to slow.
    pub fn fast_then_slow() -> Self {
        Placement {
            preference: vec![TierId::FAST, TierId::SLOW],
        }
    }

    /// Slow tier only.
    pub fn slow_only() -> Self {
        Placement {
            preference: vec![TierId::SLOW],
        }
    }

    /// A single specific tier.
    pub fn only(tier: TierId) -> Self {
        Placement {
            preference: vec![tier],
        }
    }
}

/// Callbacks from the simulated kernel into the tiering policy.
///
/// Every method has a no-op default except [`KernelHooks::place_page`];
/// a policy overrides exactly the code paths it cares about, the same way
/// the paper's patches touch only specific kernel paths.
pub trait KernelHooks {
    /// Chooses tier preference for a new page frame.
    fn place_page(&mut self, req: &PageRequest, mem: &MemorySystem) -> Placement;

    /// Whether slab-class kernel objects should be allocated through the
    /// relocatable KLOC allocation interface instead of the slab
    /// allocator (paper §4.4). Policies without KLOC return `false` and
    /// get pinned slab pages.
    fn relocatable_kernel_alloc(&self) -> bool {
        false
    }

    /// Whether the network driver extracts socket identity at RX time
    /// (the paper's 8-byte skbuff socket field, §4.2.3). Enables early
    /// knode association and elides redundant demux work in TCP.
    fn early_socket_demux(&self) -> bool {
        false
    }

    /// An inode (file or socket) was created by `tenant`. The tenant
    /// becomes the knode's owner for shared-object attribution (§12).
    fn on_inode_create(
        &mut self,
        _inode: InodeId,
        _cpu: CpuId,
        _tenant: TenantId,
        _mem: &mut MemorySystem,
    ) {
    }

    /// An inode was opened (open count 0 -> 1 marks it active).
    fn on_inode_open(&mut self, _inode: InodeId, _cpu: CpuId, _mem: &mut MemorySystem) {}

    /// The last open handle on an inode was closed (it is now inactive —
    /// the paper's primary "definitely cold" signal, §3.2).
    fn on_inode_close(&mut self, _inode: InodeId, _mem: &mut MemorySystem) {}

    /// The inode was unlinked/destroyed; its objects are being freed, not
    /// migrated (paper §3.2, second implication).
    fn on_inode_destroy(&mut self, _inode: InodeId, _mem: &mut MemorySystem) {}

    /// A kernel object was allocated on `frame`.
    fn on_object_alloc(
        &mut self,
        _obj: ObjectId,
        _info: &ObjectInfo,
        _frame: FrameId,
        _cpu: CpuId,
        _mem: &mut MemorySystem,
    ) {
    }

    /// A kernel object was freed.
    fn on_object_free(
        &mut self,
        _obj: ObjectId,
        _info: &ObjectInfo,
        _frame: FrameId,
        _mem: &mut MemorySystem,
    ) {
    }

    /// A kernel object was accessed by `tenant`. When the accessor is
    /// not the owning knode's tenant, KLOC attribution records a shared
    /// access (shared-inode/shared-socket case, §12).
    fn on_object_access(
        &mut self,
        _obj: ObjectId,
        _info: &ObjectInfo,
        _frame: FrameId,
        _cpu: CpuId,
        _tenant: TenantId,
        _mem: &mut MemorySystem,
    ) {
    }

    /// A late (TCP-layer) socket association was made for an object that
    /// was allocated before its socket was known (ingress path without
    /// early demux, §4.2.3).
    fn on_object_associate(
        &mut self,
        _obj: ObjectId,
        _info: &ObjectInfo,
        _frame: FrameId,
        _cpu: CpuId,
        _mem: &mut MemorySystem,
    ) {
    }

    /// An application page was allocated.
    fn on_app_page_alloc(&mut self, _frame: FrameId, _cpu: CpuId, _mem: &mut MemorySystem) {}

    /// An application page was accessed.
    fn on_app_page_access(&mut self, _frame: FrameId, _cpu: CpuId, _mem: &mut MemorySystem) {}

    /// Any page (app or kernel) is about to be freed; policies drop their
    /// tracking state for it.
    fn on_page_free(&mut self, _frame: FrameId, _mem: &mut MemorySystem) {}
}

/// Context threaded through every kernel operation: the memory system,
/// the policy hooks, and the CPU issuing the operation.
pub struct Ctx<'a> {
    /// The tiered memory system.
    pub mem: &'a mut MemorySystem,
    /// The tiering policy.
    pub hooks: &'a mut dyn KernelHooks,
    /// CPU performing the operation.
    pub cpu: CpuId,
    /// NUMA socket of `cpu` (0 in non-NUMA topologies).
    pub socket: u8,
    /// Tenant on whose behalf the operation runs
    /// ([`TenantId::DEFAULT`] in single-tenant runs). Multi-tenant
    /// workloads set this per session step, exactly like `cpu`.
    pub tenant: TenantId,
}

impl<'a> Ctx<'a> {
    /// Context on CPU 0 / socket 0.
    pub fn new(mem: &'a mut MemorySystem, hooks: &'a mut dyn KernelHooks) -> Self {
        Ctx {
            mem,
            hooks,
            cpu: CpuId(0),
            socket: 0,
            tenant: TenantId::DEFAULT,
        }
    }

    /// Context pinned to a CPU and socket.
    pub fn on_cpu(
        mem: &'a mut MemorySystem,
        hooks: &'a mut dyn KernelHooks,
        cpu: CpuId,
        socket: u8,
    ) -> Self {
        Ctx {
            mem,
            hooks,
            cpu,
            socket,
            tenant: TenantId::DEFAULT,
        }
    }
}

impl std::fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("cpu", &self.cpu)
            .field("socket", &self.socket)
            .finish_non_exhaustive()
    }
}

/// Trivial hooks for tests and examples: a fixed placement and no
/// notifications.
#[derive(Debug, Clone)]
pub struct NullHooks {
    placement: Placement,
}

impl NullHooks {
    /// Place everything fast-first (spilling to slow).
    pub fn fast_first() -> Self {
        NullHooks {
            placement: Placement::fast_then_slow(),
        }
    }

    /// Place everything on the slow tier.
    pub fn slow_only() -> Self {
        NullHooks {
            placement: Placement::slow_only(),
        }
    }
}

impl KernelHooks for NullHooks {
    fn place_page(&mut self, _req: &PageRequest, _mem: &MemorySystem) -> Placement {
        self.placement.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_constructors() {
        assert_eq!(
            Placement::fast_then_slow().preference,
            vec![TierId::FAST, TierId::SLOW]
        );
        assert_eq!(Placement::only(TierId(3)).preference, vec![TierId(3)]);
    }

    #[test]
    fn null_hooks_fixed_placement() {
        let mem = MemorySystem::two_tier(1 << 20, 8);
        let mut h = NullHooks::slow_only();
        let req = PageRequest {
            kind: PageKind::AppData,
            ty: None,
            inode: None,
            readahead: false,
            cpu: CpuId(0),
            tenant: TenantId::DEFAULT,
        };
        assert_eq!(h.place_page(&req, &mem), Placement::slow_only());
        assert!(!h.relocatable_kernel_alloc());
        assert!(!h.early_socket_demux());
    }

    #[test]
    fn ctx_debug_and_constructors() {
        let mut mem = MemorySystem::two_tier(1 << 20, 8);
        let mut h = NullHooks::fast_first();
        let ctx = Ctx::on_cpu(&mut mem, &mut h, CpuId(3), 1);
        assert_eq!(ctx.cpu, CpuId(3));
        assert_eq!(ctx.socket, 1);
        assert!(format!("{ctx:?}").contains("CpuId(3)"));
    }
}
