//! NVMe storage model.
//!
//! Models the paper's 512 GB NVMe device (Table 4: 1.2 GB/s sequential,
//! 412 MB/s random). Writes are asynchronous — submission queues the
//! transfer and the device drains in the background (`busy_until`) —
//! while reads are synchronous and also wait behind queued writes.
//! `fsync` waits for the device to go idle.

use kloc_mem::Nanos;

/// Whether an I/O is sequential or random, selecting the bandwidth used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum IoPattern {
    /// Sequential access (journal, writeback streams).
    Sequential,
    /// Random access (point reads).
    Random,
}

/// Cumulative disk activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiskStats {
    /// Read operations completed.
    pub reads: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Write submissions.
    pub writes: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Total time read callers stalled on the device.
    pub read_stall: Nanos,
    /// Total time `fsync` callers waited for the queue to drain.
    pub sync_stall: Nanos,
    /// I/O operations that failed (kfault injection); zero on faultless
    /// runs.
    pub io_errors: u64,
    /// Retries issued by the blk-mq layer after failed operations.
    pub retries: u64,
}

/// The storage device.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Disk {
    seq_bw_bps: u64,
    rand_bw_bps: u64,
    latency: Nanos,
    busy_until: Nanos,
    stats: DiskStats,
}

impl Default for Disk {
    fn default() -> Self {
        Disk::nvme()
    }
}

impl Disk {
    /// The paper's NVMe device: 1.2 GB/s sequential, 412 MB/s random,
    /// 20 µs access latency.
    pub fn nvme() -> Self {
        Disk {
            seq_bw_bps: 1_200_000_000,
            rand_bw_bps: 412_000_000,
            latency: Nanos::from_micros(20),
            busy_until: Nanos::ZERO,
            stats: DiskStats::default(),
        }
    }

    /// A custom device.
    pub fn new(seq_bw_bps: u64, rand_bw_bps: u64, latency: Nanos) -> Self {
        Disk {
            seq_bw_bps,
            rand_bw_bps,
            latency,
            busy_until: Nanos::ZERO,
            stats: DiskStats::default(),
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Records a failed I/O operation (kfault injection).
    pub fn record_io_error(&mut self) {
        self.stats.io_errors += 1;
    }

    /// Records a blk-mq retry after a failed operation.
    pub fn record_retry(&mut self) {
        self.stats.retries += 1;
    }

    /// Virtual time at which all queued writes complete.
    pub fn busy_until(&self) -> Nanos {
        self.busy_until
    }

    fn bw(&self, pattern: IoPattern) -> u64 {
        match pattern {
            IoPattern::Sequential => self.seq_bw_bps,
            IoPattern::Random => self.rand_bw_bps,
        }
    }

    /// Submits an asynchronous write of `bytes` at time `now`. The device
    /// queue extends; the caller is not stalled (writeback model).
    pub fn submit_write(&mut self, now: Nanos, bytes: u64, pattern: IoPattern) {
        let start = self.busy_until.max(now);
        self.busy_until = start + self.latency + Nanos::for_transfer(bytes, self.bw(pattern));
        self.stats.writes += 1;
        self.stats.bytes_written += bytes;
    }

    /// Performs a synchronous read of `bytes` at time `now`, waiting for
    /// queued writes first. Returns the total stall the caller must
    /// charge to its clock.
    pub fn read_sync(&mut self, now: Nanos, bytes: u64, pattern: IoPattern) -> Nanos {
        let start = self.busy_until.max(now);
        let done = start + self.latency + Nanos::for_transfer(bytes, self.bw(pattern));
        self.busy_until = done;
        let stall = done - now;
        self.stats.reads += 1;
        self.stats.bytes_read += bytes;
        self.stats.read_stall += stall;
        stall
    }

    /// Submits an asynchronous read of `bytes` (readahead): the device
    /// queue extends but the caller is not stalled.
    pub fn submit_read(&mut self, now: Nanos, bytes: u64, pattern: IoPattern) {
        let start = self.busy_until.max(now);
        self.busy_until = start + self.latency + Nanos::for_transfer(bytes, self.bw(pattern));
        self.stats.reads += 1;
        self.stats.bytes_read += bytes;
    }

    /// Waits for the device to go idle (fsync). Returns the stall.
    pub fn drain(&mut self, now: Nanos) -> Nanos {
        let stall = self.busy_until.saturating_sub(now);
        self.stats.sync_stall += stall;
        stall
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_write_does_not_stall_but_drain_does() {
        let mut d = Disk::nvme();
        let now = Nanos::ZERO;
        d.submit_write(now, 1_200_000_000, IoPattern::Sequential); // ~1s of work
        assert!(d.busy_until() > Nanos::from_millis(900));
        let stall = d.drain(now);
        assert_eq!(stall, d.busy_until());
        // After draining at a later time, nothing left.
        assert_eq!(d.drain(d.busy_until()), Nanos::ZERO);
    }

    #[test]
    fn read_waits_behind_queued_writes() {
        let mut d = Disk::nvme();
        d.submit_write(Nanos::ZERO, 120_000_000, IoPattern::Sequential); // 100ms
        let stall = d.read_sync(Nanos::ZERO, 4096, IoPattern::Random);
        assert!(stall > Nanos::from_millis(100), "read queued behind write");
    }

    #[test]
    fn random_reads_are_slower_than_sequential() {
        let mut a = Disk::nvme();
        let mut b = Disk::nvme();
        let r = a.read_sync(Nanos::ZERO, 1 << 20, IoPattern::Random);
        let s = b.read_sync(Nanos::ZERO, 1 << 20, IoPattern::Sequential);
        assert!(r > s);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = Disk::nvme();
        d.submit_write(Nanos::ZERO, 4096, IoPattern::Sequential);
        d.read_sync(Nanos::from_secs(1), 8192, IoPattern::Random);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().bytes_written, 4096);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().bytes_read, 8192);
        assert!(d.stats().read_stall > Nanos::ZERO);
    }

    #[test]
    fn idle_disk_read_cost_is_latency_plus_transfer() {
        let mut d = Disk::nvme();
        let stall = d.read_sync(Nanos::ZERO, 4096, IoPattern::Random);
        let expect = Nanos::from_micros(20) + Nanos::for_transfer(4096, 412_000_000);
        assert_eq!(stall, expect);
    }
}
