//! Extent tracking.
//!
//! ext4 maps file offsets to contiguous disk block ranges via extents;
//! the in-memory `extent_status` structures are slab objects that the
//! paper tiers (Table 1). We model one extent object per
//! [`span`](ExtentTree::span) bytes of file growth.
//!
//! Like [`crate::pagecache::PageCache`], this is a pure data structure —
//! the kernel facade allocates the extent objects and records them here.

use std::collections::BTreeMap;

use crate::obj::ObjectId;

/// Extent map of one inode.
#[derive(Debug, Clone, Default)]
pub struct ExtentTree {
    span: u64,
    extents: BTreeMap<u64, ObjectId>,
}

impl ExtentTree {
    /// Creates a tree with one extent per `span` bytes. Zero (which
    /// would mean "an extent covers nothing") is clamped to the
    /// documented minimum of 1 byte per extent.
    pub fn new(span: u64) -> Self {
        ExtentTree {
            span: span.max(1),
            extents: BTreeMap::new(),
        }
    }

    /// Bytes covered per extent object.
    pub fn span(&self) -> u64 {
        self.span
    }

    /// Number of live extent objects.
    pub fn len(&self) -> usize {
        self.extents.len()
    }

    /// Whether the tree has no extents.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// Extent start offsets needed to cover a file grown from `old_size`
    /// to `new_size` bytes, i.e. the spans not yet covered.
    pub fn missing_spans(&self, new_size: u64) -> Vec<u64> {
        if new_size == 0 {
            return Vec::new();
        }
        let last = (new_size - 1) / self.span;
        (0..=last)
            .map(|i| i * self.span)
            .filter(|start| !self.extents.contains_key(start))
            .collect()
    }

    /// Records the extent object covering `start`.
    ///
    /// # Panics
    /// Panics if the span is already covered.
    pub fn insert(&mut self, start: u64, obj: ObjectId) {
        debug_assert_eq!(start % self.span, 0, "extent start must be span-aligned");
        let prev = self.extents.insert(start, obj);
        assert!(prev.is_none(), "span at {start} already covered");
    }

    /// The extent object covering byte `offset`, if any. Lookups cost one
    /// object access, charged by the caller.
    pub fn lookup(&self, offset: u64) -> Option<ObjectId> {
        let start = (offset / self.span) * self.span;
        self.extents.get(&start).copied()
    }

    /// Removes and returns all extent objects (file truncate/unlink).
    pub fn drain(&mut self) -> Vec<ObjectId> {
        let objs = self.extents.values().copied().collect();
        self.extents.clear();
        objs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_spans_for_growth() {
        let mut t = ExtentTree::new(1024);
        assert_eq!(t.missing_spans(0), Vec::<u64>::new());
        assert_eq!(t.missing_spans(1), vec![0]);
        assert_eq!(t.missing_spans(2048), vec![0, 1024]);
        t.insert(0, ObjectId(1));
        assert_eq!(t.missing_spans(2049), vec![1024, 2048]);
    }

    #[test]
    fn lookup_by_offset() {
        let mut t = ExtentTree::new(1024);
        t.insert(0, ObjectId(1));
        t.insert(1024, ObjectId(2));
        assert_eq!(t.lookup(0), Some(ObjectId(1)));
        assert_eq!(t.lookup(1023), Some(ObjectId(1)));
        assert_eq!(t.lookup(1024), Some(ObjectId(2)));
        assert_eq!(t.lookup(99999), None);
    }

    #[test]
    fn drain_empties_tree() {
        let mut t = ExtentTree::new(512);
        t.insert(0, ObjectId(1));
        t.insert(512, ObjectId(2));
        let mut drained = t.drain();
        drained.sort();
        assert_eq!(drained, vec![ObjectId(1), ObjectId(2)]);
        assert!(t.is_empty());
    }

    #[test]
    fn zero_span_clamped_to_one_byte() {
        let t = ExtentTree::new(0);
        assert_eq!(t.span(), 1, "documented minimum: one byte per extent");
    }

    #[test]
    #[should_panic(expected = "already covered")]
    fn double_cover_panics() {
        let mut t = ExtentTree::new(512);
        t.insert(0, ObjectId(1));
        t.insert(0, ObjectId(2));
    }
}
