//! Filesystem journal (jbd2-style).
//!
//! Metadata-dirtying operations attach a **journal head** slab object to
//! the running transaction; when the transaction fills (or on `fsync`)
//! the kernel commits it: **journal block** pages are written sequentially
//! to the journal area and the heads are released. Both object types are
//! in the paper's Table 1 ("journal - filesystem journal buffers") and
//! show up prominently in the Fig. 2a footprint breakdown.
//!
//! This module tracks transaction state; the kernel facade allocates the
//! actual objects and performs the disk writes.

use crate::obj::ObjectId;
use crate::vfs::InodeId;

/// The logical metadata effect a journal head records. Replaying the
/// committed effects against an empty filesystem is how crash recovery
/// reconstructs metadata (see [`crate::recovery`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaUpdate {
    /// An inode was created (file, directory, ...).
    Create,
    /// The inode's size grew to this many bytes.
    Size(u64),
    /// The inode's last path was unlinked.
    Unlink,
    /// A metadata touch with no recovery-visible effect.
    Touch,
}

/// A journal head pending in the running transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingHead {
    /// The journal-head slab object.
    pub obj: ObjectId,
    /// Inode whose metadata this head journals, when known.
    pub inode: Option<InodeId>,
    /// The metadata effect being journaled.
    pub update: MetaUpdate,
}

/// Description of a commit the kernel must perform: which heads to free
/// and how many journal blocks to write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitSpec {
    /// Heads released by this commit.
    pub heads: Vec<PendingHead>,
    /// Number of 4 KB journal blocks to write sequentially (descriptor +
    /// data + commit blocks; one block per 8 heads, minimum 2).
    pub blocks: usize,
}

/// The running journal.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    txn_max: usize,
    pending: Vec<PendingHead>,
    commits: u64,
    heads_journaled: u64,
}

impl Journal {
    /// Creates a journal that forces a commit at `txn_max` pending heads.
    /// Zero (which would mean "commit before anything is pending") is
    /// clamped to the documented minimum of 1, a commit per head.
    pub fn new(txn_max: usize) -> Self {
        Journal {
            txn_max: txn_max.max(1),
            ..Journal::default()
        }
    }

    /// Heads in the running transaction.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Total commits performed.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Total heads ever journaled.
    pub fn heads_journaled(&self) -> u64 {
        self.heads_journaled
    }

    /// Adds a head recording `update` to the running transaction.
    /// Returns `true` when the transaction is now full and the caller
    /// must commit.
    pub fn add(&mut self, obj: ObjectId, inode: Option<InodeId>, update: MetaUpdate) -> bool {
        self.pending.push(PendingHead { obj, inode, update });
        self.heads_journaled += 1;
        self.pending.len() >= self.txn_max
    }

    /// Commits the running transaction. Returns `None` when empty.
    pub fn commit(&mut self) -> Option<CommitSpec> {
        if self.pending.is_empty() {
            return None;
        }
        self.commits += 1;
        let heads = std::mem::take(&mut self.pending);
        let blocks = (heads.len().div_ceil(8)).max(2);
        Some(CommitSpec { heads, blocks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_signals_at_txn_max() {
        let mut j = Journal::new(3);
        assert!(!j.add(ObjectId(1), None, MetaUpdate::Touch));
        assert!(!j.add(ObjectId(2), Some(InodeId(9)), MetaUpdate::Create));
        assert!(
            j.add(ObjectId(3), None, MetaUpdate::Touch),
            "third head fills the txn"
        );
        let spec = j.commit().unwrap();
        assert_eq!(spec.heads.len(), 3);
        assert_eq!(spec.blocks, 2, "minimum two blocks");
        assert_eq!(spec.heads[1].update, MetaUpdate::Create);
        assert_eq!(j.pending(), 0);
        assert_eq!(j.commits(), 1);
    }

    #[test]
    fn empty_commit_is_none() {
        let mut j = Journal::new(4);
        assert!(j.commit().is_none());
        assert_eq!(j.commits(), 0);
    }

    #[test]
    fn blocks_scale_with_heads() {
        let mut j = Journal::new(100);
        for i in 0..33 {
            j.add(ObjectId(i), None, MetaUpdate::Touch);
        }
        let spec = j.commit().unwrap();
        assert_eq!(spec.blocks, 5, "ceil(33/8) = 5");
        assert_eq!(j.heads_journaled(), 33);
    }

    #[test]
    fn zero_txn_clamped_to_commit_per_head() {
        let mut j = Journal::new(0);
        assert!(
            j.add(ObjectId(1), None, MetaUpdate::Touch),
            "clamped txn_max of 1 commits after every head"
        );
    }
}
