//! Network stack data structures.
//!
//! The ingress path is the interesting one for KLOCs (paper §4.2.3):
//! packets arrive asynchronously, the driver allocates a generic RX
//! buffer and skbuff *before the owning socket is known*, and vanilla
//! kernels only discover the socket several layers up the TCP stack.
//! The paper adds an 8-byte socket field filled in by the driver (early
//! demux), enabling immediate knode association and eliding redundant
//! demux work at the TCP layer.
//!
//! The structures here are owned by socket inodes in the VFS; the
//! protocol behaviour (layer costs, demux) lives in the kernel facade.

use std::collections::VecDeque;

use crate::obj::ObjectId;

/// A packet queued on a socket's receive queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// The skbuff header object.
    pub skb: ObjectId,
    /// Data buffer objects (RX ring pages on ingress).
    pub data: Vec<ObjectId>,
    /// Payload bytes.
    pub bytes: u64,
}

/// Per-socket receive queue.
#[derive(Debug, Clone, Default)]
pub struct RxQueue {
    packets: VecDeque<Packet>,
    queued_bytes: u64,
}

impl RxQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        RxQueue::default()
    }

    /// Packets waiting.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether no packets wait.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Bytes waiting.
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Enqueues a delivered packet.
    pub fn push(&mut self, packet: Packet) {
        self.queued_bytes += packet.bytes;
        self.packets.push_back(packet);
    }

    /// Dequeues the oldest packet.
    pub fn pop(&mut self) -> Option<Packet> {
        let p = self.packets.pop_front()?;
        self.queued_bytes -= p.bytes;
        Some(p)
    }

    /// Removes and returns everything (socket teardown).
    pub fn drain(&mut self) -> Vec<Packet> {
        self.queued_bytes = 0;
        self.packets.drain(..).collect()
    }
}

/// Network stack statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetStats {
    /// Packets sent (egress).
    pub tx_packets: u64,
    /// Bytes sent.
    pub tx_bytes: u64,
    /// Packets delivered (ingress).
    pub rx_packets: u64,
    /// Bytes delivered.
    pub rx_bytes: u64,
    /// Ingress packets whose socket was identified in the driver
    /// (early demux).
    pub early_demuxed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(n: u64, bytes: u64) -> Packet {
        Packet {
            skb: ObjectId(n),
            data: vec![ObjectId(n + 100)],
            bytes,
        }
    }

    #[test]
    fn fifo_order_and_byte_accounting() {
        let mut q = RxQueue::new();
        q.push(pkt(1, 100));
        q.push(pkt(2, 200));
        assert_eq!(q.len(), 2);
        assert_eq!(q.queued_bytes(), 300);
        let first = q.pop().unwrap();
        assert_eq!(first.skb, ObjectId(1));
        assert_eq!(q.queued_bytes(), 200);
    }

    #[test]
    fn drain_empties_queue() {
        let mut q = RxQueue::new();
        q.push(pkt(1, 10));
        q.push(pkt(2, 20));
        let all = q.drain();
        assert_eq!(all.len(), 2);
        assert!(q.is_empty());
        assert_eq!(q.queued_bytes(), 0);
        assert!(q.pop().is_none());
    }
}
