//! `kloc-trace`: deterministic trace/metrics layer for the KLOCs
//! reproduction.
//!
//! The crate has two halves:
//!
//! * **Schema + codec** ([`Event`], [`SCHEMA`], the JSONL writer and
//!   parser) — always compiled, dependency-free, used by the `ktrace`
//!   analyzer and by tests regardless of features.
//! * **Recorder** (session sink, per-run buffers, scope-stack
//!   attribution, counter rollups) — compiled only with the `trace`
//!   feature. Without it every entry point below is an inline no-op
//!   with the same signature, so model crates emit unconditionally at
//!   zero cost and reports stay byte-identical either way.
//!
//! Determinism rules (enforced by `kloc-lint` treating this crate as a
//! simulation crate): timestamps are virtual nanoseconds supplied by
//! the caller, never wall clock; all iteration is over ordered
//! collections; per-run buffers are assembled into the session in run
//! input order, so trace bytes are identical across `--jobs 1/2/8`.
//!
//! Emission API sketch (all no-ops unless a session is active *and*
//! the engine installed a run recorder on this thread):
//!
//! ```
//! let _guard = kloc_trace::scope("write");      // attribution stack
//! kloc_trace::charge(640);                      // ns under that stack
//! kloc_trace::with_counters(|c| c.pc_hits += 1);
//! kloc_trace::emit(|| kloc_trace::Event::Writeback { t: 0, ino: 1, pages: 8 });
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod event;

pub use event::{Counters, Event, EventSpec, ParseError, COUNTER_FIELDS, SCHEMA};

#[cfg(feature = "trace")]
mod recorder;

#[cfg(feature = "trace")]
pub use recorder::{
    charge, emit, flush, run_active, run_begin, run_take, scope, session_active, session_append,
    session_begin, session_take, with_counters, Scope,
};

/// Inline no-op shims used when the `trace` feature is off. Signatures
/// mirror `recorder` exactly so call sites compile unchanged.
#[cfg(not(feature = "trace"))]
mod noop {
    use crate::event::{Counters, Event};

    /// No-op: the `trace` feature is off, no session can start.
    #[inline(always)]
    pub fn session_begin() {}

    /// Always false without the `trace` feature.
    #[inline(always)]
    pub fn session_active() -> bool {
        false
    }

    /// No-op without the `trace` feature.
    #[inline(always)]
    pub fn session_append(_jsonl: &str) {}

    /// Always empty without the `trace` feature.
    #[inline(always)]
    pub fn session_take() -> String {
        String::new()
    }

    /// No-op without the `trace` feature.
    #[inline(always)]
    pub fn run_begin() {}

    /// Always empty without the `trace` feature.
    #[inline(always)]
    pub fn run_take() -> String {
        String::new()
    }

    /// Always false without the `trace` feature.
    #[inline(always)]
    pub fn run_active() -> bool {
        false
    }

    /// No-op: `f` is never called without the `trace` feature.
    #[inline(always)]
    pub fn emit<F: FnOnce() -> Event>(_f: F) {}

    /// No-op without the `trace` feature.
    #[inline(always)]
    pub fn charge(_ns: u64) {}

    /// No-op: `f` is never called without the `trace` feature.
    #[inline(always)]
    pub fn with_counters<F: FnOnce(&mut Counters)>(_f: F) {}

    /// No-op without the `trace` feature.
    #[inline(always)]
    pub fn flush(_t: u64) {}

    /// Inert guard; see `recorder::Scope` for the real one.
    #[must_use = "a scope guard attributes nothing unless held"]
    pub struct Scope {
        _private: (),
    }

    /// Returns an inert guard without the `trace` feature.
    #[inline(always)]
    pub fn scope(_name: &'static str) -> Scope {
        Scope { _private: () }
    }
}

#[cfg(not(feature = "trace"))]
pub use noop::{
    charge, emit, flush, run_active, run_begin, run_take, scope, session_active, session_append,
    session_begin, session_take, with_counters, Scope,
};
