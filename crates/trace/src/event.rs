//! The trace event schema and its JSONL codec.
//!
//! Every event serializes to one JSON object per line with a fixed key
//! order: `t` (virtual nanoseconds since run start), `k` (the event
//! kind), then the kind's own fields in the order [`SCHEMA`] declares
//! them. The writer is hand-rolled so the workspace stays free of
//! registry dependencies, and the fixed order makes trace files
//! byte-comparable: two runs are identical iff their JSONL is.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Counter rollup flushed as one [`Event::Counters`] line at every phase
/// boundary. All fields are deltas since the previous flush, so summing
/// a run's `counters` events yields run totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    /// Syscalls entered (all kinds).
    pub syscalls: u64,
    /// Page-cache lookups that hit a resident page.
    pub pc_hits: u64,
    /// Page-cache lookups that missed and went to backing storage.
    pub pc_misses: u64,
    /// Frames allocated (any tier).
    pub frame_allocs: u64,
    /// Frames allocated in the fastest tier (tier index 0).
    pub fast_allocs: u64,
    /// Frames freed.
    pub frame_frees: u64,
    /// Slab objects allocated.
    pub slab_allocs: u64,
    /// Slab objects freed.
    pub slab_frees: u64,
    /// Objects that joined a knode's member set.
    pub member_adds: u64,
    /// Objects that left a knode's member set.
    pub member_dels: u64,
    /// Allocations the KLOC placement policy diverted to slow memory.
    pub slow_diverts: u64,
    /// Pages issued by readahead.
    pub readahead_pages: u64,
}

impl Counters {
    /// True when every counter is zero (nothing to report).
    pub fn is_zero(&self) -> bool {
        *self == Counters::default()
    }
}

/// One structured trace event. See [`SCHEMA`] for the per-kind field
/// reference (names, units, emission sites) that DESIGN.md §7 mirrors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A simulation run started.
    RunBegin {
        /// Virtual nanoseconds since run start (always 0 here).
        t: u64,
        /// Workload label, e.g. `RocksDB`.
        workload: String,
        /// Policy label, e.g. `KLOCs`.
        policy: String,
        /// Compact platform descriptor, e.g. `two_tier:fast=1048576:bw=8`.
        platform: String,
        /// Workload RNG seed.
        seed: u64,
        /// Measured operations the run will execute.
        ops: u64,
    },
    /// A run phase (`setup`, `measured`, `teardown`) started.
    PhaseBegin {
        /// Virtual nanoseconds since run start.
        t: u64,
        /// Phase name.
        phase: String,
    },
    /// The run finished; `t` is the final virtual clock.
    RunEnd {
        /// Virtual nanoseconds since run start.
        t: u64,
        /// Measured operations completed.
        ops: u64,
    },
    /// Virtual time charged under one scope stack since the last flush.
    Attrib {
        /// Virtual nanoseconds since run start (flush time).
        t: u64,
        /// `;`-joined scope stack, flamegraph-fold style, e.g.
        /// `measured;write;journal`.
        stack: String,
        /// Virtual nanoseconds charged under this stack since the last
        /// flush.
        ns: u64,
    },
    /// Counter deltas since the last flush (see [`Counters`]).
    Counters {
        /// Virtual nanoseconds since run start (flush time).
        t: u64,
        /// The counter deltas.
        c: Counters,
    },
    /// One frame migrated between tiers.
    Migrate {
        /// Virtual nanoseconds since run start.
        t: u64,
        /// Frame id.
        frame: u64,
        /// Source tier index.
        from: u64,
        /// Destination tier index.
        to: u64,
        /// Page kind label, e.g. `page-cache`.
        kind: String,
        /// Foreground virtual-time cost of the move, nanoseconds.
        cost: u64,
    },
    /// The page-cache shrinker evicted one page.
    PcEvict {
        /// Virtual nanoseconds since run start.
        t: u64,
        /// Owning inode number.
        ino: u64,
        /// Page index within the file.
        idx: u64,
        /// 1 if the page was dirty (forced a writeback), else 0.
        dirty: u64,
    },
    /// The page-cache shrinker evicted a page across a tenant boundary:
    /// the tenant running the allocation that triggered reclaim is not
    /// the tenant owning the evicted page's inode. Never emitted in
    /// single-tenant runs, so existing traces are unaffected.
    TenantEvict {
        /// Virtual nanoseconds since run start.
        t: u64,
        /// Tenant whose allocation triggered the eviction.
        evictor: u64,
        /// Tenant owning the evicted page's inode.
        victim: u64,
        /// Owning inode number.
        ino: u64,
        /// Page index within the file.
        idx: u64,
    },
    /// Writeback flushed dirty pages of one inode.
    Writeback {
        /// Virtual nanoseconds since run start.
        t: u64,
        /// Inode whose pages were flushed.
        ino: u64,
        /// Pages written back in this batch.
        pages: u64,
    },
    /// The journal committed.
    JournalCommit {
        /// Virtual nanoseconds since run start.
        t: u64,
        /// Transaction heads folded into the commit.
        heads: u64,
        /// Metadata blocks written.
        blocks: u64,
    },
    /// A knode changed lifecycle state.
    Knode {
        /// Virtual nanoseconds since run start.
        t: u64,
        /// Inode number keying the knode.
        ino: u64,
        /// New state: `created`, `active`, `inactive`, or `destroyed`.
        state: String,
    },
    /// A KLOC-level migration decision executed, with the evidence that
    /// justified it and the knode's post-move tier residency.
    KlocMigrate {
        /// Virtual nanoseconds since run start.
        t: u64,
        /// Inode number keying the knode.
        ino: u64,
        /// Direction: `promote` or `demote`.
        dir: String,
        /// Mechanism: `enmasse` (whole knode) or `members` (granular).
        how: String,
        /// Global kmap epoch when the decision was taken.
        epoch: u64,
        /// Knode age in epochs at decision time (epoch - last touch).
        age: u64,
        /// Pages actually moved.
        moved: u64,
        /// Member frames resident in the fast tier after the move.
        fast: u64,
        /// Member frames resident in slow tiers after the move.
        slow: u64,
    },
    /// A tier's effective bandwidth changed (Optane interference model).
    Contention {
        /// Virtual nanoseconds since run start.
        t: u64,
        /// Tier index whose bandwidth changed.
        tier: u64,
        /// New bandwidth multiplier in thousandths (1000 = nominal).
        milli: u64,
    },
    /// An injected fault fired (`kfault` feature).
    Fault {
        /// Virtual nanoseconds since run start.
        t: u64,
        /// Fault class: `disk`, `tier`, `migrate`, or `crash`.
        kind: String,
        /// Detail: the disk op, tier fault kind and index, etc.
        info: String,
    },
    /// The blk-mq layer retried a failed I/O after backoff.
    Retry {
        /// Virtual nanoseconds since run start.
        t: u64,
        /// Disk operation being retried: `read`, `write`, or `fsync`.
        op: String,
        /// Retry attempt number (1-based).
        attempt: u64,
        /// Backoff charged to the virtual clock before this attempt.
        backoff: u64,
    },
    /// Journal recovery ran after a (simulated) crash.
    Recovery {
        /// Virtual nanoseconds since run start (crash instant).
        t: u64,
        /// Committed journal records replayed.
        replayed: u64,
        /// Torn or uncommitted records discarded.
        torn: u64,
        /// Durable data pages surviving recovery.
        pages: u64,
    },
    /// One tier-drain pass live-migrated resident frames off an
    /// offlining tier (`kfault` feature).
    Drain {
        /// Virtual nanoseconds since run start (end of the pass).
        t: u64,
        /// Tier index being drained.
        tier: u64,
        /// Frames migrated off the tier in this pass.
        moved: u64,
        /// Frames still resident on the tier after the pass.
        left: u64,
        /// Migration-fault retries absorbed during the pass.
        retries: u64,
        /// Foreground virtual-time cost charged by the pass, ns.
        cost: u64,
    },
    /// A QoS-ordered degradation action hit one tenant: the reclaim or
    /// resize machinery preempted this tenant because its class was the
    /// lowest-priority class still holding pages.
    Degrade {
        /// Virtual nanoseconds since run start.
        t: u64,
        /// Tenant that was degraded.
        tenant: u64,
        /// The tenant's QoS class (`guaranteed`/`burstable`/`best-effort`).
        qos: String,
        /// What happened: `reclaim` (QoS-ordered shrinker eviction) or
        /// `resize` (gradual self-eviction after a budget shrink).
        action: String,
        /// Pages taken from the tenant by this action.
        pages: u64,
    },
    /// A tenant budget was resized mid-run (`sys_kloc_memsize` analog).
    BudgetResize {
        /// Virtual nanoseconds since run start.
        t: u64,
        /// Tenant whose budget changed.
        tenant: u64,
        /// Which budget: `pc` (page-cache pages) or `fast` (fast-tier
        /// kernel frames).
        kind: String,
        /// Previous cap (0 = uncapped).
        from: u64,
        /// New cap (0 = uncapped).
        to: u64,
    },
}

/// Schema entry for one event kind: the `k` value, the field list in
/// serialization order as `(name, units)` pairs (excluding the common
/// `t`/`k` prefix), and the source file that emits it.
#[derive(Debug, Clone, Copy)]
pub struct EventSpec {
    /// The `k` field value.
    pub kind: &'static str,
    /// Fields after `t` and `k`, in serialization order, as
    /// `(name, units)` pairs. Units vocabulary: `ns`, `id`, `idx`,
    /// `count`, `pages`, `blocks`, `epochs`, `milli`, `bool`, `str`.
    pub fields: &'static [(&'static str, &'static str)],
    /// Workspace-relative source file that constructs the event.
    pub site: &'static str,
}

/// Field list shared by [`Event::Counters`] and the schema table.
pub const COUNTER_FIELDS: &[(&str, &str)] = &[
    ("syscalls", "count"),
    ("pc_hits", "count"),
    ("pc_misses", "count"),
    ("frame_allocs", "count"),
    ("fast_allocs", "count"),
    ("frame_frees", "count"),
    ("slab_allocs", "count"),
    ("slab_frees", "count"),
    ("member_adds", "count"),
    ("member_dels", "count"),
    ("slow_diverts", "count"),
    ("readahead_pages", "count"),
];

/// The full event schema, one entry per [`Event`] variant. DESIGN.md §7
/// renders this table and a test diffs the two, so runtime emission,
/// rustdoc, and the prose reference cannot drift apart.
pub const SCHEMA: &[EventSpec] = &[
    EventSpec {
        kind: "run_begin",
        fields: &[
            ("workload", "str"),
            ("policy", "str"),
            ("platform", "str"),
            ("seed", "id"),
            ("ops", "count"),
        ],
        site: "crates/sim/src/engine.rs",
    },
    EventSpec {
        kind: "phase_begin",
        fields: &[("phase", "str")],
        site: "crates/sim/src/engine.rs",
    },
    EventSpec {
        kind: "run_end",
        fields: &[("ops", "count")],
        site: "crates/sim/src/engine.rs",
    },
    EventSpec {
        kind: "attrib",
        fields: &[("stack", "str"), ("ns", "ns")],
        site: "crates/trace/src/recorder.rs",
    },
    EventSpec {
        kind: "counters",
        fields: COUNTER_FIELDS,
        site: "crates/trace/src/recorder.rs",
    },
    EventSpec {
        kind: "migrate",
        fields: &[
            ("frame", "id"),
            ("from", "idx"),
            ("to", "idx"),
            ("kind", "str"),
            ("cost", "ns"),
        ],
        site: "crates/mem/src/system.rs",
    },
    EventSpec {
        kind: "pc_evict",
        fields: &[("ino", "id"), ("idx", "idx"), ("dirty", "bool")],
        site: "crates/kernel/src/kernel.rs",
    },
    EventSpec {
        kind: "tenant_evict",
        fields: &[
            ("evictor", "id"),
            ("victim", "id"),
            ("ino", "id"),
            ("idx", "idx"),
        ],
        site: "crates/kernel/src/kernel.rs",
    },
    EventSpec {
        kind: "writeback",
        fields: &[("ino", "id"), ("pages", "pages")],
        site: "crates/kernel/src/kernel.rs",
    },
    EventSpec {
        kind: "journal_commit",
        fields: &[("heads", "count"), ("blocks", "blocks")],
        site: "crates/kernel/src/kernel.rs",
    },
    EventSpec {
        kind: "knode",
        fields: &[("ino", "id"), ("state", "str")],
        site: "crates/core/src/registry.rs",
    },
    EventSpec {
        kind: "kloc_migrate",
        fields: &[
            ("ino", "id"),
            ("dir", "str"),
            ("how", "str"),
            ("epoch", "epochs"),
            ("age", "epochs"),
            ("moved", "pages"),
            ("fast", "pages"),
            ("slow", "pages"),
        ],
        site: "crates/core/src/registry.rs",
    },
    EventSpec {
        kind: "contention",
        fields: &[("tier", "idx"), ("milli", "milli")],
        site: "crates/sim/src/engine.rs",
    },
    EventSpec {
        kind: "fault",
        fields: &[("kind", "str"), ("info", "str")],
        site: "crates/mem/src/system.rs",
    },
    EventSpec {
        kind: "retry",
        fields: &[("op", "str"), ("attempt", "count"), ("backoff", "ns")],
        site: "crates/kernel/src/kernel.rs",
    },
    EventSpec {
        kind: "recovery",
        fields: &[("replayed", "count"), ("torn", "count"), ("pages", "pages")],
        site: "crates/sim/src/crashsweep.rs",
    },
    EventSpec {
        kind: "drain",
        fields: &[
            ("tier", "idx"),
            ("moved", "pages"),
            ("left", "pages"),
            ("retries", "count"),
            ("cost", "ns"),
        ],
        site: "crates/mem/src/system.rs",
    },
    EventSpec {
        kind: "degrade",
        fields: &[
            ("tenant", "id"),
            ("qos", "str"),
            ("action", "str"),
            ("pages", "pages"),
        ],
        site: "crates/kernel/src/kernel.rs",
    },
    EventSpec {
        kind: "budget_resize",
        fields: &[
            ("tenant", "id"),
            ("kind", "str"),
            ("from", "count"),
            ("to", "count"),
        ],
        site: "crates/sim/src/engine.rs",
    },
];

impl Event {
    /// Every event kind string, in [`SCHEMA`] order.
    pub const ALL_KINDS: &'static [&'static str] = &[
        "run_begin",
        "phase_begin",
        "run_end",
        "attrib",
        "counters",
        "migrate",
        "pc_evict",
        "tenant_evict",
        "writeback",
        "journal_commit",
        "knode",
        "kloc_migrate",
        "contention",
        "fault",
        "retry",
        "recovery",
        "drain",
        "degrade",
        "budget_resize",
    ];

    /// The `k` field value for this event.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunBegin { .. } => "run_begin",
            Event::PhaseBegin { .. } => "phase_begin",
            Event::RunEnd { .. } => "run_end",
            Event::Attrib { .. } => "attrib",
            Event::Counters { .. } => "counters",
            Event::Migrate { .. } => "migrate",
            Event::PcEvict { .. } => "pc_evict",
            Event::TenantEvict { .. } => "tenant_evict",
            Event::Writeback { .. } => "writeback",
            Event::JournalCommit { .. } => "journal_commit",
            Event::Knode { .. } => "knode",
            Event::KlocMigrate { .. } => "kloc_migrate",
            Event::Contention { .. } => "contention",
            Event::Fault { .. } => "fault",
            Event::Retry { .. } => "retry",
            Event::Recovery { .. } => "recovery",
            Event::Drain { .. } => "drain",
            Event::Degrade { .. } => "degrade",
            Event::BudgetResize { .. } => "budget_resize",
        }
    }

    /// The virtual timestamp (`t` field) of this event.
    pub fn t(&self) -> u64 {
        match self {
            Event::RunBegin { t, .. }
            | Event::PhaseBegin { t, .. }
            | Event::RunEnd { t, .. }
            | Event::Attrib { t, .. }
            | Event::Counters { t, .. }
            | Event::Migrate { t, .. }
            | Event::PcEvict { t, .. }
            | Event::TenantEvict { t, .. }
            | Event::Writeback { t, .. }
            | Event::JournalCommit { t, .. }
            | Event::Knode { t, .. }
            | Event::KlocMigrate { t, .. }
            | Event::Contention { t, .. }
            | Event::Fault { t, .. }
            | Event::Retry { t, .. }
            | Event::Recovery { t, .. }
            | Event::Drain { t, .. }
            | Event::Degrade { t, .. }
            | Event::BudgetResize { t, .. } => *t,
        }
    }

    /// Appends this event as one JSONL line (including the trailing
    /// newline) to `out`, with the fixed key order the schema defines.
    pub fn write_jsonl(&self, out: &mut String) {
        let mut w = LineWriter::begin(out, self.t(), self.kind());
        match self {
            Event::RunBegin {
                workload,
                policy,
                platform,
                seed,
                ops,
                ..
            } => {
                w.str("workload", workload);
                w.str("policy", policy);
                w.str("platform", platform);
                w.num("seed", *seed);
                w.num("ops", *ops);
            }
            Event::PhaseBegin { phase, .. } => {
                w.str("phase", phase);
            }
            Event::RunEnd { ops, .. } => {
                w.num("ops", *ops);
            }
            Event::Attrib { stack, ns, .. } => {
                w.str("stack", stack);
                w.num("ns", *ns);
            }
            Event::Counters { c, .. } => {
                for (name, value) in COUNTER_FIELDS.iter().zip(c.values()) {
                    w.num(name.0, value);
                }
            }
            Event::Migrate {
                frame,
                from,
                to,
                kind,
                cost,
                ..
            } => {
                w.num("frame", *frame);
                w.num("from", *from);
                w.num("to", *to);
                w.str("kind", kind);
                w.num("cost", *cost);
            }
            Event::PcEvict {
                ino, idx, dirty, ..
            } => {
                w.num("ino", *ino);
                w.num("idx", *idx);
                w.num("dirty", *dirty);
            }
            Event::TenantEvict {
                evictor,
                victim,
                ino,
                idx,
                ..
            } => {
                w.num("evictor", *evictor);
                w.num("victim", *victim);
                w.num("ino", *ino);
                w.num("idx", *idx);
            }
            Event::Writeback { ino, pages, .. } => {
                w.num("ino", *ino);
                w.num("pages", *pages);
            }
            Event::JournalCommit { heads, blocks, .. } => {
                w.num("heads", *heads);
                w.num("blocks", *blocks);
            }
            Event::Knode { ino, state, .. } => {
                w.num("ino", *ino);
                w.str("state", state);
            }
            Event::KlocMigrate {
                ino,
                dir,
                how,
                epoch,
                age,
                moved,
                fast,
                slow,
                ..
            } => {
                w.num("ino", *ino);
                w.str("dir", dir);
                w.str("how", how);
                w.num("epoch", *epoch);
                w.num("age", *age);
                w.num("moved", *moved);
                w.num("fast", *fast);
                w.num("slow", *slow);
            }
            Event::Contention { tier, milli, .. } => {
                w.num("tier", *tier);
                w.num("milli", *milli);
            }
            Event::Fault { kind, info, .. } => {
                w.str("kind", kind);
                w.str("info", info);
            }
            Event::Retry {
                op,
                attempt,
                backoff,
                ..
            } => {
                w.str("op", op);
                w.num("attempt", *attempt);
                w.num("backoff", *backoff);
            }
            Event::Recovery {
                replayed,
                torn,
                pages,
                ..
            } => {
                w.num("replayed", *replayed);
                w.num("torn", *torn);
                w.num("pages", *pages);
            }
            Event::Drain {
                tier,
                moved,
                left,
                retries,
                cost,
                ..
            } => {
                w.num("tier", *tier);
                w.num("moved", *moved);
                w.num("left", *left);
                w.num("retries", *retries);
                w.num("cost", *cost);
            }
            Event::Degrade {
                tenant,
                qos,
                action,
                pages,
                ..
            } => {
                w.num("tenant", *tenant);
                w.str("qos", qos);
                w.str("action", action);
                w.num("pages", *pages);
            }
            Event::BudgetResize {
                tenant,
                kind,
                from,
                to,
                ..
            } => {
                w.num("tenant", *tenant);
                w.str("kind", kind);
                w.num("from", *from);
                w.num("to", *to);
            }
        }
        w.end();
    }

    /// Serializes this event to one owned JSONL line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        self.write_jsonl(&mut out);
        out
    }

    /// Parses one JSONL line back into an [`Event`]. Tolerates any key
    /// order so hand-edited fixtures still load; unknown kinds and
    /// missing fields are errors.
    pub fn parse_line(line: &str) -> Result<Event, ParseError> {
        let fields = parse_flat_object(line)?;
        let num = |key: &str| -> Result<u64, ParseError> {
            match fields.get(key) {
                Some(Val::Num(n)) => Ok(*n),
                Some(Val::Str(_)) => Err(ParseError::new(format!("field `{key}` is not a number"))),
                None => Err(ParseError::new(format!("missing field `{key}`"))),
            }
        };
        let string = |key: &str| -> Result<String, ParseError> {
            match fields.get(key) {
                Some(Val::Str(s)) => Ok(s.clone()),
                Some(Val::Num(_)) => Err(ParseError::new(format!("field `{key}` is not a string"))),
                None => Err(ParseError::new(format!("missing field `{key}`"))),
            }
        };
        let t = num("t")?;
        let kind = string("k")?;
        Ok(match kind.as_str() {
            "run_begin" => Event::RunBegin {
                t,
                workload: string("workload")?,
                policy: string("policy")?,
                platform: string("platform")?,
                seed: num("seed")?,
                ops: num("ops")?,
            },
            "phase_begin" => Event::PhaseBegin {
                t,
                phase: string("phase")?,
            },
            "run_end" => Event::RunEnd {
                t,
                ops: num("ops")?,
            },
            "attrib" => Event::Attrib {
                t,
                stack: string("stack")?,
                ns: num("ns")?,
            },
            "counters" => {
                let mut c = Counters::default();
                for (slot, (name, _)) in c.values_mut().into_iter().zip(COUNTER_FIELDS) {
                    *slot = num(name)?;
                }
                Event::Counters { t, c }
            }
            "migrate" => Event::Migrate {
                t,
                frame: num("frame")?,
                from: num("from")?,
                to: num("to")?,
                kind: string("kind")?,
                cost: num("cost")?,
            },
            "pc_evict" => Event::PcEvict {
                t,
                ino: num("ino")?,
                idx: num("idx")?,
                dirty: num("dirty")?,
            },
            "tenant_evict" => Event::TenantEvict {
                t,
                evictor: num("evictor")?,
                victim: num("victim")?,
                ino: num("ino")?,
                idx: num("idx")?,
            },
            "writeback" => Event::Writeback {
                t,
                ino: num("ino")?,
                pages: num("pages")?,
            },
            "journal_commit" => Event::JournalCommit {
                t,
                heads: num("heads")?,
                blocks: num("blocks")?,
            },
            "knode" => Event::Knode {
                t,
                ino: num("ino")?,
                state: string("state")?,
            },
            "kloc_migrate" => Event::KlocMigrate {
                t,
                ino: num("ino")?,
                dir: string("dir")?,
                how: string("how")?,
                epoch: num("epoch")?,
                age: num("age")?,
                moved: num("moved")?,
                fast: num("fast")?,
                slow: num("slow")?,
            },
            "contention" => Event::Contention {
                t,
                tier: num("tier")?,
                milli: num("milli")?,
            },
            "fault" => Event::Fault {
                t,
                kind: string("kind")?,
                info: string("info")?,
            },
            "retry" => Event::Retry {
                t,
                op: string("op")?,
                attempt: num("attempt")?,
                backoff: num("backoff")?,
            },
            "recovery" => Event::Recovery {
                t,
                replayed: num("replayed")?,
                torn: num("torn")?,
                pages: num("pages")?,
            },
            "drain" => Event::Drain {
                t,
                tier: num("tier")?,
                moved: num("moved")?,
                left: num("left")?,
                retries: num("retries")?,
                cost: num("cost")?,
            },
            "degrade" => Event::Degrade {
                t,
                tenant: num("tenant")?,
                qos: string("qos")?,
                action: string("action")?,
                pages: num("pages")?,
            },
            "budget_resize" => Event::BudgetResize {
                t,
                tenant: num("tenant")?,
                kind: string("kind")?,
                from: num("from")?,
                to: num("to")?,
            },
            other => return Err(ParseError::new(format!("unknown event kind `{other}`"))),
        })
    }

    /// Parses a whole JSONL document, skipping blank lines. The error
    /// carries the 1-based line number of the first bad line.
    pub fn parse_all(text: &str) -> Result<Vec<Event>, ParseError> {
        let mut out = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match Event::parse_line(line) {
                Ok(ev) => out.push(ev),
                Err(e) => {
                    return Err(ParseError::new(format!("line {}: {}", idx + 1, e.message)));
                }
            }
        }
        Ok(out)
    }
}

impl Counters {
    /// Counter values in [`COUNTER_FIELDS`] order.
    pub fn values(&self) -> [u64; 12] {
        [
            self.syscalls,
            self.pc_hits,
            self.pc_misses,
            self.frame_allocs,
            self.fast_allocs,
            self.frame_frees,
            self.slab_allocs,
            self.slab_frees,
            self.member_adds,
            self.member_dels,
            self.slow_diverts,
            self.readahead_pages,
        ]
    }

    /// Mutable counter slots in [`COUNTER_FIELDS`] order.
    pub fn values_mut(&mut self) -> [&mut u64; 12] {
        [
            &mut self.syscalls,
            &mut self.pc_hits,
            &mut self.pc_misses,
            &mut self.frame_allocs,
            &mut self.fast_allocs,
            &mut self.frame_frees,
            &mut self.slab_allocs,
            &mut self.slab_frees,
            &mut self.member_adds,
            &mut self.member_dels,
            &mut self.slow_diverts,
            &mut self.readahead_pages,
        ]
    }

    /// Adds every counter of `other` into `self`.
    pub fn add(&mut self, other: &Counters) {
        for (slot, v) in self.values_mut().into_iter().zip(other.values()) {
            *slot += v;
        }
    }
}

/// Error from [`Event::parse_line`] / [`Event::parse_all`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what failed to parse.
    pub message: String,
}

impl ParseError {
    fn new(message: String) -> Self {
        ParseError { message }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ParseError {}

/// A parsed flat JSON value: this codec only supports one level of
/// string/number fields, which is all the schema uses.
enum Val {
    Num(u64),
    Str(String),
}

/// Parses `{"key":value,...}` with string/u64 values only.
fn parse_flat_object(line: &str) -> Result<BTreeMap<String, Val>, ParseError> {
    let mut fields = BTreeMap::new();
    let bytes: Vec<char> = line.trim().chars().collect();
    let n = bytes.len();
    if n < 2 || bytes[0] != '{' || bytes[n - 1] != '}' {
        return Err(ParseError::new("not a JSON object".to_owned()));
    }
    let mut i = 1;
    let skip_ws = |i: &mut usize| {
        while *i < n - 1 && bytes[*i].is_whitespace() {
            *i += 1;
        }
    };
    let parse_string = |i: &mut usize| -> Result<String, ParseError> {
        if bytes[*i] != '"' {
            return Err(ParseError::new(format!(
                "expected `\"` at column {}",
                *i + 1
            )));
        }
        *i += 1;
        let mut s = String::new();
        while *i < n - 1 {
            match bytes[*i] {
                '"' => {
                    *i += 1;
                    return Ok(s);
                }
                '\\' => {
                    *i += 1;
                    let esc = *bytes
                        .get(*i)
                        .ok_or_else(|| ParseError::new("truncated escape".to_owned()))?;
                    match esc {
                        '"' => s.push('"'),
                        '\\' => s.push('\\'),
                        '/' => s.push('/'),
                        'n' => s.push('\n'),
                        't' => s.push('\t'),
                        'r' => s.push('\r'),
                        'u' => {
                            let hex: String = bytes
                                .get(*i + 1..*i + 5)
                                .ok_or_else(|| ParseError::new("truncated \\u escape".to_owned()))?
                                .iter()
                                .collect();
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| ParseError::new(format!("bad \\u escape `{hex}`")))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| ParseError::new("bad codepoint".to_owned()))?,
                            );
                            *i += 4;
                        }
                        other => {
                            return Err(ParseError::new(format!("unsupported escape `\\{other}`")))
                        }
                    }
                    *i += 1;
                }
                c => {
                    s.push(c);
                    *i += 1;
                }
            }
        }
        Err(ParseError::new("unterminated string".to_owned()))
    };
    loop {
        skip_ws(&mut i);
        if i >= n - 1 {
            break;
        }
        let key = parse_string(&mut i)?;
        skip_ws(&mut i);
        if i >= n - 1 || bytes[i] != ':' {
            return Err(ParseError::new(format!("expected `:` after key `{key}`")));
        }
        i += 1;
        skip_ws(&mut i);
        if i >= n - 1 {
            return Err(ParseError::new(format!("missing value for key `{key}`")));
        }
        let val = if bytes[i] == '"' {
            Val::Str(parse_string(&mut i)?)
        } else {
            let start = i;
            while i < n - 1 && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let digits: String = bytes[start..i].iter().collect();
            Val::Num(
                digits
                    .parse::<u64>()
                    .map_err(|_| ParseError::new(format!("bad number for key `{key}`")))?,
            )
        };
        fields.insert(key, val);
        skip_ws(&mut i);
        if i < n - 1 {
            if bytes[i] != ',' {
                return Err(ParseError::new(format!("expected `,` at column {}", i + 1)));
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Incremental writer for one JSONL line with the fixed key order.
struct LineWriter<'a> {
    out: &'a mut String,
}

impl<'a> LineWriter<'a> {
    fn begin(out: &'a mut String, t: u64, kind: &str) -> Self {
        let _ = write!(out, "{{\"t\":{t},\"k\":\"{kind}\"");
        LineWriter { out }
    }

    fn num(&mut self, key: &str, value: u64) {
        let _ = write!(self.out, ",\"{key}\":{value}");
    }

    fn str(&mut self, key: &str, value: &str) {
        let _ = write!(self.out, ",\"{key}\":\"");
        for c in value.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\t' => self.out.push_str("\\t"),
                '\r' => self.out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.out, "\\u{:04x}", c as u32);
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    fn end(self) {
        self.out.push_str("}\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RunBegin {
                t: 0,
                workload: "RocksDB".to_owned(),
                policy: "KLOCs".to_owned(),
                platform: "two_tier:fast=1048576:bw=8".to_owned(),
                seed: 0x51_0C5,
                ops: 1500,
            },
            Event::PhaseBegin {
                t: 0,
                phase: "setup".to_owned(),
            },
            Event::Attrib {
                t: 10,
                stack: "setup;write;journal".to_owned(),
                ns: 1234,
            },
            Event::Counters {
                t: 10,
                c: Counters {
                    syscalls: 3,
                    pc_hits: 2,
                    ..Counters::default()
                },
            },
            Event::Migrate {
                t: 20,
                frame: 7,
                from: 1,
                to: 0,
                kind: "page-cache".to_owned(),
                cost: 640,
            },
            Event::PcEvict {
                t: 21,
                ino: 4,
                idx: 9,
                dirty: 1,
            },
            Event::TenantEvict {
                t: 21,
                evictor: 2,
                victim: 0,
                ino: 4,
                idx: 9,
            },
            Event::Writeback {
                t: 22,
                ino: 4,
                pages: 32,
            },
            Event::JournalCommit {
                t: 23,
                heads: 2,
                blocks: 5,
            },
            Event::Knode {
                t: 24,
                ino: 4,
                state: "inactive".to_owned(),
            },
            Event::KlocMigrate {
                t: 25,
                ino: 4,
                dir: "demote".to_owned(),
                how: "enmasse".to_owned(),
                epoch: 12,
                age: 3,
                moved: 17,
                fast: 0,
                slow: 17,
            },
            Event::Contention {
                t: 26,
                tier: 1,
                milli: 400,
            },
            Event::Fault {
                t: 27,
                kind: "disk".to_owned(),
                info: "write".to_owned(),
            },
            Event::Retry {
                t: 28,
                op: "write".to_owned(),
                attempt: 1,
                backoff: 50_000,
            },
            Event::Recovery {
                t: 29,
                replayed: 6,
                torn: 1,
                pages: 40,
            },
            Event::Drain {
                t: 30,
                tier: 0,
                moved: 48,
                left: 16,
                retries: 2,
                cost: 96_000,
            },
            Event::Degrade {
                t: 31,
                tenant: 3,
                qos: "best-effort".to_owned(),
                action: "reclaim".to_owned(),
                pages: 1,
            },
            Event::BudgetResize {
                t: 32,
                tenant: 3,
                kind: "pc".to_owned(),
                from: 64,
                to: 32,
            },
            Event::RunEnd { t: 33, ops: 1500 },
        ]
    }

    #[test]
    fn roundtrip_every_kind() {
        let events = sample_events();
        assert_eq!(events.len(), Event::ALL_KINDS.len());
        for ev in &events {
            let line = ev.to_jsonl();
            assert!(line.ends_with('\n'));
            let back = Event::parse_line(line.trim_end()).expect("parse");
            assert_eq!(&back, ev, "roundtrip failed for {line}");
        }
    }

    #[test]
    fn parse_all_reports_line_numbers() {
        let mut doc = String::new();
        for ev in sample_events() {
            ev.write_jsonl(&mut doc);
        }
        let parsed = Event::parse_all(&doc).expect("parse_all");
        assert_eq!(parsed, sample_events());
        let bad = format!("{doc}{{\"t\":1,\"k\":\"nope\"}}\n");
        let err = Event::parse_all(&bad).unwrap_err();
        assert!(err.message.contains("line 20"), "{}", err.message);
        assert!(err.message.contains("nope"), "{}", err.message);
    }

    #[test]
    fn string_escaping_roundtrips() {
        let ev = Event::Knode {
            t: 1,
            ino: 2,
            state: "we\"ird\\st\nate\u{1}".to_owned(),
        };
        let line = ev.to_jsonl();
        assert_eq!(Event::parse_line(line.trim_end()).unwrap(), ev);
    }

    #[test]
    fn schema_covers_every_kind_in_order() {
        let schema_kinds: Vec<&str> = SCHEMA.iter().map(|s| s.kind).collect();
        assert_eq!(schema_kinds, Event::ALL_KINDS);
        for ev in sample_events() {
            let spec = SCHEMA.iter().find(|s| s.kind == ev.kind()).unwrap();
            // Serialized key order must match the schema's field order.
            let line = ev.to_jsonl();
            let mut last = 0;
            for key in ["t", "k"]
                .into_iter()
                .chain(spec.fields.iter().map(|(n, _)| *n))
            {
                let marker = format!("\"{key}\":");
                let pos = line
                    .find(&marker)
                    .unwrap_or_else(|| panic!("missing key `{key}` in {line}"));
                assert!(pos >= last, "key `{key}` out of order in {line}");
                last = pos;
            }
        }
    }

    #[test]
    fn tolerates_reordered_keys_and_blank_lines() {
        let doc = "\n{\"k\":\"run_end\",\"ops\":5,\"t\":9}\n\n";
        let parsed = Event::parse_all(doc).unwrap();
        assert_eq!(parsed, vec![Event::RunEnd { t: 9, ops: 5 }]);
    }
}
