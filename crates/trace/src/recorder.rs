//! The trace recorder: thread-local per-run event buffers, scope-stack
//! virtual-time attribution, counter rollups, and the process-global
//! session sink. Compiled only with the `trace` feature; `lib.rs`
//! provides inline no-op shims with identical signatures otherwise.
//!
//! Determinism contract: the recorder never reads wall-clock time,
//! randomness, or the environment. Timestamps come from the caller's
//! virtual clock, attribution keys live in a `BTreeMap` so flush order
//! is the key order, and each run records into a buffer local to the
//! worker thread executing it — the session assembles per-run buffers
//! in input order, so trace bytes are independent of worker count.

use crate::event::{Counters, Event};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Global session sink. `None` means no session is active and per-run
/// recording is skipped entirely.
static SESSION: Mutex<Option<String>> = Mutex::new(None);

thread_local! {
    /// The run recorder for the worker thread currently executing a
    /// simulation run, if any.
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Per-run recording state.
struct Recorder {
    /// Serialized JSONL for this run so far.
    out: String,
    /// Active scope stack (static names pushed by [`scope`]).
    stack: Vec<&'static str>,
    /// Cached `;`-join of `stack`, rebuilt on push/pop.
    key: String,
    /// Nanoseconds charged to `key` since the last scope transition or
    /// flush. [`charge`] fires on every page touch, so it only bumps
    /// this counter; the map entry is settled once per syscall burst
    /// (scope transition), not per touch.
    pending: u64,
    /// Virtual nanoseconds charged per scope stack since the last flush.
    attrib: BTreeMap<String, u64>,
    /// Counter deltas since the last flush.
    counters: Counters,
}

impl Recorder {
    fn new() -> Self {
        Recorder {
            out: String::new(),
            stack: Vec::new(),
            key: "-".to_owned(),
            pending: 0,
            attrib: BTreeMap::new(),
            counters: Counters::default(),
        }
    }

    fn rebuild_key(&mut self) {
        self.key = if self.stack.is_empty() {
            "-".to_owned()
        } else {
            self.stack.join(";")
        };
    }

    /// Folds the pending burst into the attribution map. Must run
    /// before `key` changes or `attrib` is read; the per-key sums are
    /// then exactly what per-touch bumping would have produced.
    fn settle(&mut self) {
        if self.pending > 0 {
            *self.attrib.entry(self.key.clone()).or_insert(0) += self.pending;
            self.pending = 0;
        }
    }
}

/// Starts a trace session: clears the global sink and makes
/// [`session_active`] true so the engine installs per-run recorders.
pub fn session_begin() {
    *SESSION.lock().unwrap() = Some(String::new()); // lint: unwrap-ok — a poisoned lock means a run already panicked
}

/// Whether a trace session is collecting.
pub fn session_active() -> bool {
    SESSION.lock().unwrap().is_some() // lint: unwrap-ok — a poisoned lock means a run already panicked
}

/// Appends one run's serialized JSONL to the session sink. The caller
/// (the sweep runner) appends runs in input order, which is what makes
/// session bytes independent of `--jobs`.
pub fn session_append(jsonl: &str) {
    // lint: unwrap-ok — a poisoned lock means a run already panicked
    if let Some(buf) = SESSION.lock().unwrap().as_mut() {
        buf.push_str(jsonl);
    }
}

/// Ends the session and returns everything appended so far.
pub fn session_take() -> String {
    SESSION.lock().unwrap().take().unwrap_or_default() // lint: unwrap-ok — a poisoned lock means a run already panicked
}

/// Installs a fresh run recorder on the calling thread. Call once at
/// run start (the engine does this when a session is active).
pub fn run_begin() {
    RECORDER.with(|r| *r.borrow_mut() = Some(Recorder::new()));
}

/// Removes the calling thread's run recorder and returns its JSONL.
pub fn run_take() -> String {
    RECORDER
        .with(|r| r.borrow_mut().take())
        .map(|rec| rec.out)
        .unwrap_or_default()
}

/// Whether the calling thread has an active run recorder. Emission
/// helpers check this themselves; this is for callers that want to
/// skip building expensive event inputs.
pub fn run_active() -> bool {
    RECORDER.with(|r| r.borrow().is_some())
}

/// Serializes the event produced by `f` into the current run buffer.
/// `f` is not called when no recorder is active, so event construction
/// costs nothing outside trace collection.
pub fn emit<F: FnOnce() -> Event>(f: F) {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            f().write_jsonl(&mut rec.out);
        }
    });
}

/// Charges `ns` virtual nanoseconds to the current scope stack.
///
/// Batched: the charge lands in a plain per-burst counter; the map
/// entry for the scope key is only touched when the scope changes or a
/// flush happens (see [`Recorder::settle`]).
pub fn charge(ns: u64) {
    if ns == 0 {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.pending += ns;
        }
    });
}

/// Applies `f` to the current run's counter deltas.
pub fn with_counters<F: FnOnce(&mut Counters)>(f: F) {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            f(&mut rec.counters);
        }
    });
}

/// Flushes attribution and counter deltas accumulated since the last
/// flush as `attrib` events (one per scope stack, in key order) and one
/// `counters` event, all stamped `t`. The engine calls this at phase
/// boundaries.
pub fn flush(t: u64) {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.settle();
            let attrib = std::mem::take(&mut rec.attrib);
            for (stack, ns) in attrib {
                Event::Attrib { t, stack, ns }.write_jsonl(&mut rec.out);
            }
            let c = std::mem::take(&mut rec.counters);
            if !c.is_zero() {
                Event::Counters { t, c }.write_jsonl(&mut rec.out);
            }
        }
    });
}

/// RAII guard returned by [`scope`]; pops its name on drop.
#[must_use = "a scope guard attributes nothing unless held"]
pub struct Scope {
    pushed: bool,
}

/// Pushes `name` onto the calling thread's scope stack for virtual-time
/// attribution. Charges recorded while the guard lives are keyed by the
/// full `;`-joined stack, flamegraph-fold style.
pub fn scope(name: &'static str) -> Scope {
    let pushed = RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.settle();
            rec.stack.push(name);
            rec.rebuild_key();
            true
        } else {
            false
        }
    });
    Scope { pushed }
}

impl Drop for Scope {
    fn drop(&mut self) {
        if self.pushed {
            RECORDER.with(|r| {
                if let Some(rec) = r.borrow_mut().as_mut() {
                    rec.settle();
                    rec.stack.pop();
                    rec.rebuild_key();
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recorder state is thread-local and the session is process-global;
    /// running these tests serially on one thread keeps them independent.
    #[test]
    fn recorder_end_to_end() {
        // No recorder: everything is a cheap no-op and closures never run.
        let _ = run_take();
        emit(|| unreachable!("emit closure must not run without a recorder"));
        charge(5);
        with_counters(|_| unreachable!("counter closure must not run without a recorder"));
        assert!(!run_active());
        assert_eq!(run_take(), "");

        // Scoped charges fold into `;`-joined stacks.
        run_begin();
        assert!(run_active());
        charge(7); // before any scope: keyed "-"
        {
            let _outer = scope("measured");
            charge(10);
            {
                let _inner = scope("write");
                charge(32);
                with_counters(|c| c.syscalls += 1);
            }
            charge(100);
        }
        flush(40);
        emit(|| Event::RunEnd { t: 41, ops: 1 });
        let out = run_take();
        assert!(!run_active());
        let events = Event::parse_all(&out).unwrap();
        assert_eq!(
            events[..3],
            [
                Event::Attrib {
                    t: 40,
                    stack: "-".to_owned(),
                    ns: 7
                },
                Event::Attrib {
                    t: 40,
                    stack: "measured".to_owned(),
                    ns: 110
                },
                Event::Attrib {
                    t: 40,
                    stack: "measured;write".to_owned(),
                    ns: 32
                },
            ]
        );
        match &events[3] {
            Event::Counters { t: 40, c } => assert_eq!(c.syscalls, 1),
            other => panic!("expected counters, got {other:?}"),
        }
        assert_eq!(events[4], Event::RunEnd { t: 41, ops: 1 });

        // Flushing again with nothing accumulated emits nothing.
        flush(50);
        run_begin();
        flush(50);
        assert_eq!(run_take(), "");

        // Session sink concatenates in append order.
        assert!(!session_active());
        session_append("dropped\n"); // inactive: ignored
        session_begin();
        assert!(session_active());
        session_append("a\n");
        session_append("b\n");
        assert_eq!(session_take(), "a\nb\n");
        assert!(!session_active());
        assert_eq!(session_take(), "");
    }

    /// Burst batching must be invisible: re-entering a scope merges its
    /// bursts into one attribution line, and a flush in the middle of a
    /// scope settles the open burst under the right key.
    #[test]
    fn burst_batching_matches_per_touch_sums() {
        run_begin();
        {
            let _s = scope("read");
            charge(3);
            charge(4);
        }
        {
            let _s = scope("read");
            charge(5);
            flush(9); // mid-scope flush: the open burst settles first
            charge(1);
        }
        flush(20);
        let events = Event::parse_all(&run_take()).unwrap();
        assert_eq!(
            events,
            [
                Event::Attrib {
                    t: 9,
                    stack: "read".to_owned(),
                    ns: 12
                },
                Event::Attrib {
                    t: 20,
                    stack: "read".to_owned(),
                    ns: 1
                },
            ]
        );
    }
}
