//! Diffs the DESIGN.md §7 event-schema table against the compiled-in
//! [`kloc_trace::SCHEMA`], so the runtime event enum, the rustdoc, and
//! the prose reference cannot drift apart (an ISSUE acceptance
//! criterion: every runtime-emitted kind appears in the doc table).

use kloc_trace::{Event, SCHEMA};

/// Parses the fenced schema table out of DESIGN.md: one
/// `(kind, fields, site)` tuple per row, in document order.
#[allow(clippy::type_complexity)]
fn doc_rows() -> Vec<(String, Vec<(String, String)>, String)> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md");
    let text = std::fs::read_to_string(path).expect("read DESIGN.md");
    let begin = text
        .find("<!-- ktrace-schema:begin -->")
        .expect("DESIGN.md must carry the ktrace-schema:begin marker");
    let end = text
        .find("<!-- ktrace-schema:end -->")
        .expect("DESIGN.md must carry the ktrace-schema:end marker");
    let mut rows = Vec::new();
    for line in text[begin..end].lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        // Header and divider rows carry no backticked kind cell.
        if cells.len() != 3 || !cells[0].starts_with('`') {
            continue;
        }
        let unquote = |s: &str| s.trim_matches('`').to_owned();
        let fields = cells[1]
            .split_whitespace()
            .map(|f| {
                let f = f.trim_matches('`');
                let (name, units) = f
                    .split_once(':')
                    .unwrap_or_else(|| panic!("field `{f}` is not `name:units`"));
                (name.to_owned(), units.to_owned())
            })
            .collect();
        rows.push((unquote(cells[0]), fields, unquote(cells[2])));
    }
    rows
}

#[test]
fn design_doc_schema_matches_compiled_schema() {
    // The compiled schema itself covers every event kind, in order...
    let schema_kinds: Vec<&str> = SCHEMA.iter().map(|s| s.kind).collect();
    assert_eq!(schema_kinds, Event::ALL_KINDS);

    // ...and the DESIGN.md table mirrors it row-for-row,
    // field-for-field, site-for-site.
    let rows = doc_rows();
    assert_eq!(
        rows.len(),
        SCHEMA.len(),
        "DESIGN.md schema table row count != compiled SCHEMA"
    );
    for ((kind, fields, site), spec) in rows.iter().zip(SCHEMA) {
        assert_eq!(kind, spec.kind, "kind order mismatch");
        let want: Vec<(String, String)> = spec
            .fields
            .iter()
            .map(|(n, u)| ((*n).to_owned(), (*u).to_owned()))
            .collect();
        assert_eq!(fields, &want, "fields of `{}` drifted", spec.kind);
        assert_eq!(site, spec.site, "emission site of `{}` drifted", spec.kind);
    }
}
