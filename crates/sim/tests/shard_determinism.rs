//! Determinism contract of the sharded hot-path structures: the shard
//! count (frame free lists, page-cache LRU, cache reverse map) is
//! observably inert — for any matrix, runs at 2/4/8 shards yield exactly
//! the reports single-shard runs do. The sharded structures share one
//! recency/stamp order, so this holds bit-for-bit, not just
//! statistically (the report is the determinism oracle: it folds in
//! frame-id values, LRU eviction order, and policy observations).
//!
//! Mirrors `runner.rs` (worker-count inertness) for the shard dimension.

use kloc_kernel::KernelParams;
use kloc_policy::PolicyKind;
use kloc_sim::engine::{Platform, RunConfig};
use kloc_sim::Runner;
use kloc_workloads::{Scale, WorkloadKind};

/// The runner-test matrix, parameterized by shard count.
fn matrix(scale: &Scale, shards: u32) -> Vec<RunConfig> {
    let mut configs = Vec::new();
    for platform in [
        Platform::TwoTier {
            fast_bytes: 512 << 10,
            bw_ratio: 8,
        },
        Platform::TwoTier {
            fast_bytes: 256 << 10,
            bw_ratio: 2,
        },
    ] {
        for w in [
            WorkloadKind::RocksDb,
            WorkloadKind::Redis,
            WorkloadKind::Filebench,
        ] {
            for p in [
                PolicyKind::AllSlow,
                PolicyKind::Naive,
                PolicyKind::Nimble,
                PolicyKind::Kloc,
            ] {
                configs.push(RunConfig {
                    workload: w,
                    policy: p,
                    scale: scale.clone(),
                    platform,
                    kernel_params: Some(KernelParams {
                        page_cache_budget: scale.page_cache_frames,
                        shards,
                        ..KernelParams::default()
                    }),
                    faults: None,
                    budgets: Vec::new(),
                });
            }
        }
    }
    configs
}

fn reports_for(scale: &Scale, shards: u32) -> Vec<kloc_sim::engine::RunReport> {
    Runner::serial()
        .run_all(matrix(scale, shards))
        .expect("sharded matrix")
}

#[test]
fn shard_count_is_observably_inert_tiny() {
    let scale = Scale::tiny();
    let baseline = reports_for(&scale, 1);
    for shards in [2u32, 4, 8] {
        let got = reports_for(&scale, shards);
        assert_eq!(baseline.len(), got.len());
        for (i, (b, g)) in baseline.iter().zip(&got).enumerate() {
            assert_eq!(
                b.elapsed, g.elapsed,
                "run {i}: virtual time ({shards} shards)"
            );
            assert_eq!(
                b.migrations, g.migrations,
                "run {i}: migrations ({shards} shards)"
            );
            assert_eq!(b, g, "run {i}: full report ({shards} shards)");
        }
    }
}

#[test]
#[ignore = "slow; run with --ignored or via CI's full pass"]
fn shard_count_is_observably_inert_small() {
    let scale = Scale::small();
    let baseline = reports_for(&scale, 1);
    for shards in [2u32, 4, 8] {
        assert_eq!(baseline, reports_for(&scale, shards), "{shards} shards");
    }
}

// The trace-bytes variant of this contract (shard count leaves the
// `kloc-trace` session byte stream unchanged) lives in `trace_run.rs`,
// which owns the process-global trace session mutex.
