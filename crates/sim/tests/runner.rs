//! Determinism contract of the parallel sweep runner: for any batch,
//! parallel execution yields exactly the reports serial execution does,
//! in the same order.

use kloc_policy::PolicyKind;
use kloc_sim::engine::{Platform, RunConfig};
use kloc_sim::Runner;
use kloc_workloads::{Scale, WorkloadKind};

/// A mixed fig4-style matrix: several workloads x several policies, with
/// two platform variants thrown in so run costs differ widely.
fn matrix() -> Vec<RunConfig> {
    let mut configs = Vec::new();
    for platform in [
        Platform::TwoTier {
            fast_bytes: 512 << 10,
            bw_ratio: 8,
        },
        Platform::TwoTier {
            fast_bytes: 256 << 10,
            bw_ratio: 2,
        },
    ] {
        for w in [
            WorkloadKind::RocksDb,
            WorkloadKind::Redis,
            WorkloadKind::Filebench,
        ] {
            for p in [
                PolicyKind::AllSlow,
                PolicyKind::Naive,
                PolicyKind::Nimble,
                PolicyKind::Kloc,
            ] {
                configs.push(RunConfig {
                    workload: w,
                    policy: p,
                    scale: Scale::tiny(),
                    platform,
                    kernel_params: None,
                    faults: None,
                    budgets: Vec::new(),
                });
            }
        }
    }
    configs
}

#[test]
fn runner_matches_serial() {
    let configs = matrix();
    let serial = Runner::serial().run_all(configs.clone()).expect("serial");

    for jobs in [2, 4, 8] {
        let parallel = Runner::new(jobs)
            .run_all(configs.clone())
            .expect("parallel");
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            // Spot-check the load-bearing fields with readable messages
            // before the full structural comparison.
            assert_eq!(s.workload, p.workload, "run {i}: workload");
            assert_eq!(s.policy, p.policy, "run {i}: policy");
            assert_eq!(s.elapsed, p.elapsed, "run {i}: virtual elapsed time");
            assert_eq!(s.ops, p.ops, "run {i}: ops completed");
            assert_eq!(s.migrations, p.migrations, "run {i}: migration counters");
            assert_eq!(s, p, "run {i}: full report ({jobs} jobs)");
        }
    }
}
