//! Determinism contract of the batched access-cost path: charging a
//! run of accesses through `MemorySystem::access_batch` (one clock
//! advance, one trace charge) instead of one call per page is
//! observably inert — the batched cost is the exact sum of the
//! per-access costs, so reports are bit-for-bit identical with the
//! batching on or off. The report is the determinism oracle: it folds
//! in virtual time, per-tier access counts, migration order, and
//! policy observations.
//!
//! Mirrors `shard_determinism.rs` for the batch dimension.

use kloc_kernel::KernelParams;
use kloc_policy::PolicyKind;
use kloc_sim::engine::{Platform, RunConfig};
use kloc_sim::Runner;
use kloc_workloads::{Scale, WorkloadKind};

/// The runner-test matrix, parameterized by the batch toggle.
fn matrix(scale: &Scale, batch_accesses: bool) -> Vec<RunConfig> {
    let mut configs = Vec::new();
    for platform in [
        Platform::TwoTier {
            fast_bytes: 512 << 10,
            bw_ratio: 8,
        },
        Platform::TwoTier {
            fast_bytes: 256 << 10,
            bw_ratio: 2,
        },
    ] {
        for w in [
            WorkloadKind::RocksDb,
            WorkloadKind::Redis,
            WorkloadKind::Filebench,
        ] {
            for p in [
                PolicyKind::AllSlow,
                PolicyKind::Naive,
                PolicyKind::Nimble,
                PolicyKind::Kloc,
            ] {
                configs.push(RunConfig {
                    workload: w,
                    policy: p,
                    scale: scale.clone(),
                    platform,
                    kernel_params: Some(KernelParams {
                        page_cache_budget: scale.page_cache_frames,
                        batch_accesses,
                        ..KernelParams::default()
                    }),
                    faults: None,
                    budgets: Vec::new(),
                });
            }
        }
    }
    configs
}

fn reports_for(scale: &Scale, batch: bool) -> Vec<kloc_sim::engine::RunReport> {
    Runner::serial()
        .run_all(matrix(scale, batch))
        .expect("batch matrix")
}

#[test]
fn batched_access_path_is_observably_inert_tiny() {
    let scale = Scale::tiny();
    let batched = reports_for(&scale, true);
    let unbatched = reports_for(&scale, false);
    assert_eq!(batched.len(), unbatched.len());
    for (i, (b, u)) in batched.iter().zip(&unbatched).enumerate() {
        assert_eq!(b.elapsed, u.elapsed, "run {i}: virtual time");
        assert_eq!(b.migrations, u.migrations, "run {i}: migrations");
        assert_eq!(b, u, "run {i}: full report");
    }
}

#[test]
#[ignore = "slow; run with --ignored or via CI's full pass"]
fn batched_access_path_is_observably_inert_small() {
    let scale = Scale::small();
    assert_eq!(reports_for(&scale, true), reports_for(&scale, false));
}
