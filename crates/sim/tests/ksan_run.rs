//! End-to-end sanitizer runs: execute tiny workloads with the ksan
//! cross-structure audits armed at a tight interval and assert they
//! complete cleanly — and that the audits are observation-only, i.e.
//! the report is identical to a run without auditing pressure.
//!
//! Gated on the `ksan` feature (see `[[test]]` in Cargo.toml); run with
//! `cargo test -p kloc-sim --features ksan`.

use kloc_policy::PolicyKind;
use kloc_sim::engine::{run, Platform, RunConfig};
use kloc_workloads::{Scale, WorkloadKind};

fn cfg(workload: WorkloadKind, policy: PolicyKind) -> RunConfig {
    RunConfig {
        workload,
        policy,
        scale: Scale::tiny(),
        platform: Platform::TwoTier {
            fast_bytes: 512 << 10,
            bw_ratio: 8,
        },
        kernel_params: None,
        faults: None,
        budgets: Vec::new(),
    }
}

#[test]
fn tiny_runs_pass_audits_for_every_policy() {
    for policy in [
        PolicyKind::Naive,
        PolicyKind::AllFast,
        PolicyKind::AllSlow,
        PolicyKind::Kloc,
    ] {
        let r = run(&cfg(WorkloadKind::RocksDb, policy)).unwrap();
        assert_eq!(r.ops, Scale::tiny().ops, "{policy:?}");
    }
}

#[test]
fn tiny_runs_pass_audits_for_every_workload() {
    for workload in [
        WorkloadKind::RocksDb,
        WorkloadKind::Redis,
        WorkloadKind::Filebench,
        WorkloadKind::Cassandra,
        WorkloadKind::Spark,
    ] {
        let r = run(&cfg(workload, PolicyKind::Kloc)).unwrap();
        assert!(r.elapsed > kloc_mem::Nanos::ZERO, "{workload:?}");
    }
}

#[test]
fn audited_run_report_matches_unaudited_semantics() {
    // Audits are observation-only: a run with ksan compiled in must
    // produce the same virtual-time trajectory run-to-run (the on/off
    // byte-identity is checked by CI diffing repro output across
    // feature sets; here we at least pin determinism under audit).
    let a = run(&cfg(WorkloadKind::RocksDb, PolicyKind::Kloc)).unwrap();
    let b = run(&cfg(WorkloadKind::RocksDb, PolicyKind::Kloc)).unwrap();
    assert_eq!(a, b);
}
