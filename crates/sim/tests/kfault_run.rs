//! kfault integration: the crash-recovery sweep is clean end-to-end,
//! faultless runs are unaffected by the compiled-in machinery, and
//! seeded fault plans are deterministic and visible in the report.
//! Compiled only with `--features kfault` (see Cargo.toml).

use kloc_mem::{FaultPlan, Nanos};
use kloc_policy::PolicyKind;
use kloc_sim::crashsweep;
use kloc_sim::engine::{self, RunConfig};
use kloc_workloads::{Scale, WorkloadKind};

fn cfg(faults: Option<FaultPlan>) -> RunConfig {
    RunConfig {
        faults,
        ..RunConfig::two_tier(WorkloadKind::RocksDb, PolicyKind::Kloc, Scale::tiny())
    }
}

#[test]
fn crashsweep_on_tiny_is_violation_free() {
    let summary = crashsweep::sweep(WorkloadKind::RocksDb, PolicyKind::Kloc, &Scale::tiny(), 2)
        .expect("sweep completes");
    assert!(summary.commits > 0);
    assert_eq!(summary.violations(), 0, "{}", summary.render());
    // The sweep must exercise both torn records (boundary and
    // mid-commit crashes leave an incomplete record behind) and clean
    // crashes right after a full commit (nothing torn, commit replays).
    assert!(summary.outcomes.iter().any(|o| o.torn > 0));
    assert!(summary
        .outcomes
        .iter()
        .any(|o| o.torn == 0 && o.replayed > 0));
}

#[test]
fn faultless_runs_ignore_the_compiled_in_machinery() {
    let plain = engine::run(&cfg(None)).expect("plain run");
    let empty_plan = engine::run(&cfg(Some(FaultPlan::new()))).expect("empty-plan run");
    assert_eq!(plain, empty_plan, "an empty plan must not perturb the run");
    assert_eq!(plain.io_errors, 0);
    assert_eq!(plain.io_retries, 0);
}

#[test]
fn seeded_fault_runs_are_deterministic_and_report_their_faults() {
    let baseline = engine::run(&cfg(None)).expect("baseline");
    let horizon = baseline.setup_time + baseline.elapsed;
    let plan = FaultPlan::seeded(7, horizon);
    assert!(!plan.is_empty());
    let a = engine::run(&cfg(Some(plan.clone()))).expect("seeded run");
    let b = engine::run(&cfg(Some(plan))).expect("seeded run repeat");
    assert_eq!(a, b, "same plan, same run");
    assert!(
        a.io_errors > 0 && a.io_retries > 0,
        "seeded plan must inject disk faults the kernel retries \
         (io_errors={}, io_retries={})",
        a.io_errors,
        a.io_retries
    );
    // Retries stall the virtual clock, so the faulted run is slower.
    assert!(a.elapsed + a.setup_time > Nanos::ZERO);
    assert_ne!(a.elapsed, baseline.elapsed);
}

#[test]
fn transient_disk_faults_do_not_change_the_outcome() {
    // A burst shorter than the retry budget is fully absorbed: same op
    // count, same final kernel state, only timing and I/O stats differ.
    let plan = FaultPlan::new().with_disk_fault(Nanos::ZERO, kloc_mem::DiskOp::Write, 2);
    let faulted = engine::run(&cfg(Some(plan))).expect("faulted run");
    let plain = engine::run(&cfg(None)).expect("plain run");
    assert_eq!(faulted.ops, plain.ops);
    assert_eq!(faulted.kernel.cache_hits, plain.kernel.cache_hits);
    assert_eq!(faulted.io_errors, 2);
    assert_eq!(faulted.io_retries, 2);
}
