//! Determinism contract of the multi-tenant runs: the per-tenant
//! breakdown (and the whole report it rides in) is byte-identical at any
//! runner worker count and any shard count, with budgets on or off. The
//! tenant bookkeeping (owner stamping, self-eviction FIFOs, cross-
//! eviction attribution) must not observe scheduling or sharding.
//!
//! The trace-bytes half of this contract lives in `trace_run.rs`, which
//! owns the process-global trace session mutex.

use kloc_kernel::KernelParams;
use kloc_policy::PolicyKind;
use kloc_sim::engine::{Platform, RunConfig, RunReport};
use kloc_sim::Runner;
use kloc_workloads::{Scale, WorkloadKind};

/// Both tenant modes under the two policies the experiment exercises.
fn matrix(scale: &Scale, shards: Option<u32>) -> Vec<RunConfig> {
    let mut configs = Vec::new();
    for budgeted in [false, true] {
        for policy in [PolicyKind::Kloc, PolicyKind::Naive] {
            configs.push(RunConfig {
                workload: WorkloadKind::Tenants { budgeted },
                policy,
                scale: scale.clone(),
                platform: Platform::TwoTier {
                    fast_bytes: scale.fast_bytes,
                    bw_ratio: 8,
                },
                kernel_params: shards.map(|shards| KernelParams {
                    page_cache_budget: scale.page_cache_frames,
                    shards,
                    ..KernelParams::default()
                }),
                faults: None,
                budgets: Vec::new(),
            });
        }
    }
    configs
}

fn assert_same_reports(baseline: &[RunReport], got: &[RunReport], what: &str) {
    assert_eq!(baseline.len(), got.len(), "{what}: report count");
    for (i, (b, g)) in baseline.iter().zip(got).enumerate() {
        assert_eq!(b.tenants, g.tenants, "run {i}: tenant breakdown ({what})");
        assert_eq!(b, g, "run {i}: full report ({what})");
    }
}

#[test]
fn tenant_reports_independent_of_worker_count() {
    let scale = Scale::tiny();
    let baseline = Runner::new(1)
        .run_all(matrix(&scale, None))
        .expect("tenant matrix");
    assert!(
        baseline.iter().all(|r| r.tenants.len() == 3),
        "every run reports all three tenants"
    );
    for jobs in [2usize, 8] {
        let got = Runner::new(jobs)
            .run_all(matrix(&scale, None))
            .expect("tenant matrix");
        assert_same_reports(&baseline, &got, &format!("--jobs {jobs}"));
    }
}

#[test]
fn tenant_reports_independent_of_shard_count() {
    let scale = Scale::tiny();
    let baseline = Runner::serial()
        .run_all(matrix(&scale, Some(1)))
        .expect("tenant matrix");
    for shards in [2u32, 4, 8] {
        let got = Runner::serial()
            .run_all(matrix(&scale, Some(shards)))
            .expect("tenant matrix");
        assert_same_reports(&baseline, &got, &format!("--shards {shards}"));
    }
}

#[test]
fn single_tenant_runs_report_no_tenants() {
    let scale = Scale::tiny();
    let r = Runner::serial()
        .run_all(vec![RunConfig::two_tier(
            WorkloadKind::RocksDb,
            PolicyKind::Kloc,
            scale,
        )])
        .expect("run");
    assert!(r[0].tenants.is_empty());
}
