//! Smoke test: every experiment module runs end to end at tiny scale
//! and produces structurally complete output.

use kloc_sim::engine::Platform;
use kloc_sim::experiments::{ablations, fig2, fig4, fig5, fig6, table6};
use kloc_sim::Runner;
use kloc_workloads::{Scale, WorkloadKind};

fn platform(scale: &Scale) -> Platform {
    Platform::TwoTier {
        fast_bytes: scale.fast_bytes,
        bw_ratio: 8,
    }
}

#[test]
fn every_experiment_regenerates_at_tiny_scale() {
    let runner = Runner::auto();
    let scale = Scale::tiny();
    let one = [WorkloadKind::RocksDb];

    // Fig 2 family.
    let reports = fig2::run_all(&runner, &scale).expect("fig2");
    assert_eq!(reports.len(), WorkloadKind::ALL.len());
    assert_eq!(fig2::fig2a(&reports).len(), reports.len());
    assert_eq!(fig2::fig2b(&reports, &reports).len(), reports.len());
    assert_eq!(fig2::fig2c(&reports).len(), reports.len());
    assert_eq!(fig2::fig2d(&reports).len(), reports.len());
    assert!(fig2::fig2a_detailed_table(&reports).len() > 10);

    // Fig 4.
    let rows = fig4::run(&runner, &scale, platform(&scale), &one).expect("fig4");
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].speedups.len(), 6);

    // Fig 5a / 5b / 5c.
    let rows = fig5::fig5a(&runner, &scale, &one).expect("fig5a");
    assert_eq!(rows[0].speedups.len(), 4);
    let rows = fig5::fig5b(&runner, &scale, platform(&scale)).expect("fig5b");
    assert_eq!(rows.len(), 4);
    let rows = fig5::fig5c(&runner, &scale, platform(&scale), &one).expect("fig5c");
    assert_eq!(rows[0].series.len(), fig5::inclusion_stages().len());

    // Fig 6 (single cell).
    let cells = fig6::run(&runner, &scale, &one, &[scale.fast_bytes], &[8]).expect("fig6");
    assert_eq!(cells.len(), fig6::POLICIES.len());

    // Table 6.
    let rows = table6::run(&runner, &scale, &one).expect("table6");
    assert_eq!(rows.len(), 1);

    // Ablations.
    ablations::percpu(&runner, &scale).expect("percpu");
    ablations::prefetch(&runner, &scale, WorkloadKind::Spark).expect("prefetch");
    ablations::thp(&runner, &scale, &one).expect("thp");
    ablations::granularity(&runner, &scale, &one).expect("granularity");
}
