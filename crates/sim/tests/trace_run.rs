//! End-to-end tests for the `kloc-trace` collection path (behind
//! `required-features = ["trace"]`).
//!
//! Covers the two trace determinism oracles the ISSUE pins:
//!
//! 1. a committed golden trace byte-compares against a fresh run of the
//!    Fig. 4 RocksDB/KLOCs tiny cell, and
//! 2. session bytes are identical at 1/2/8 runner workers.
//!
//! The trace session is process-global, so every test takes `SESSION`
//! before touching it — Rust runs tests in one process.

use std::sync::Mutex;

use kloc_policy::PolicyKind;
use kloc_sim::engine::{Platform, RunConfig};
use kloc_sim::Runner;
use kloc_workloads::{Scale, WorkloadKind};

/// Serializes tests that use the process-global trace session.
static SESSION: Mutex<()> = Mutex::new(());

fn cell(workload: WorkloadKind, policy: PolicyKind) -> RunConfig {
    let scale = Scale::tiny();
    RunConfig {
        workload,
        policy,
        platform: Platform::TwoTier {
            fast_bytes: scale.fast_bytes,
            bw_ratio: 8,
        },
        scale,
        kernel_params: None,
        faults: None,
        budgets: Vec::new(),
    }
}

/// Runs `configs` under a fresh trace session and returns its bytes.
fn collect(runner: &Runner, configs: Vec<RunConfig>) -> String {
    kloc_trace::session_begin();
    runner.run_all(configs).expect("runs succeed");
    kloc_trace::session_take()
}

/// Panics with the first differing line instead of dumping two
/// multi-thousand-line documents.
fn assert_same_trace(got: &str, want: &str, what: &str) {
    if got == want {
        return;
    }
    for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
        assert_eq!(g, w, "{what}: first difference at line {}", i + 1);
    }
    panic!(
        "{what}: line counts differ ({} vs {})",
        got.lines().count(),
        want.lines().count()
    );
}

#[test]
fn golden_trace_matches() {
    let _session = SESSION.lock().unwrap();
    let got = collect(
        &Runner::serial(),
        vec![cell(WorkloadKind::RocksDb, PolicyKind::Kloc)],
    );
    let want = include_str!("fixtures/golden_trace.jsonl");
    // Regenerate after an intentional model change with a trace build:
    // repro run --workload rocksdb --policy kloc --scale tiny \
    //   --trace crates/sim/tests/fixtures/golden_trace.jsonl
    assert_same_trace(&got, want, "golden trace");
}

#[test]
fn golden_trace_is_well_formed() {
    let events = kloc_trace::Event::parse_all(include_str!("fixtures/golden_trace.jsonl"))
        .expect("golden trace parses");
    assert!(matches!(
        events.first(),
        Some(kloc_trace::Event::RunBegin { .. })
    ));
    assert!(matches!(
        events.last(),
        Some(kloc_trace::Event::RunEnd { .. })
    ));
    // Virtual timestamps never go backwards within a run.
    let mut last = 0;
    for ev in &events {
        assert!(ev.t() >= last, "clock went backwards at {}", ev.to_jsonl());
        last = ev.t();
    }
    // Re-serializing reproduces the file exactly (codec is bijective on
    // writer output).
    let round: String = events.iter().map(|e| e.to_jsonl()).collect();
    assert_same_trace(
        &round,
        include_str!("fixtures/golden_trace.jsonl"),
        "reserialized golden",
    );
}

#[test]
fn trace_bytes_independent_of_worker_count() {
    let _session = SESSION.lock().unwrap();
    let configs = vec![
        cell(WorkloadKind::RocksDb, PolicyKind::Kloc),
        cell(WorkloadKind::Redis, PolicyKind::Naive),
        cell(WorkloadKind::Filebench, PolicyKind::Nimble),
        cell(WorkloadKind::Cassandra, PolicyKind::Kloc),
        cell(WorkloadKind::Spark, PolicyKind::AllSlow),
        cell(WorkloadKind::Redis, PolicyKind::Kloc),
    ];
    let serial = collect(&Runner::new(1), configs.clone());
    assert!(!serial.is_empty());
    for jobs in [2, 8] {
        let parallel = collect(&Runner::new(jobs), configs.clone());
        assert_same_trace(&parallel, &serial, &format!("--jobs {jobs}"));
    }
}

#[test]
fn trace_bytes_independent_of_shard_count() {
    let _session = SESSION.lock().unwrap();
    use kloc_kernel::KernelParams;
    let scale = Scale::tiny();
    let sharded_cell = |workload, policy, shards| {
        let mut c = cell(workload, policy);
        c.kernel_params = Some(KernelParams {
            page_cache_budget: scale.page_cache_frames,
            shards,
            ..KernelParams::default()
        });
        c
    };
    let matrix = |shards| {
        vec![
            sharded_cell(WorkloadKind::RocksDb, PolicyKind::Kloc, shards),
            sharded_cell(WorkloadKind::Filebench, PolicyKind::Nimble, shards),
            sharded_cell(WorkloadKind::Redis, PolicyKind::Naive, shards),
        ]
    };
    let baseline = collect(&Runner::serial(), matrix(1));
    assert!(!baseline.is_empty());
    for shards in [2, 4, 8] {
        let got = collect(&Runner::serial(), matrix(shards));
        assert_same_trace(&got, &baseline, &format!("--shards {shards}"));
    }
}

#[test]
fn tenant_trace_bytes_independent_of_workers_and_shards() {
    let _session = SESSION.lock().unwrap();
    use kloc_kernel::KernelParams;
    let scale = Scale::tiny();
    let tenant_cell = |budgeted, shards| {
        let mut c = cell(WorkloadKind::Tenants { budgeted }, PolicyKind::Kloc);
        if let Some(shards) = shards {
            c.kernel_params = Some(KernelParams {
                page_cache_budget: scale.page_cache_frames,
                shards,
                ..KernelParams::default()
            });
        }
        c
    };
    let matrix = |shards| vec![tenant_cell(false, shards), tenant_cell(true, shards)];
    let baseline = collect(&Runner::new(1), matrix(None));
    assert!(!baseline.is_empty());
    // Budgets-off runs cross tenant boundaries, so the stream must carry
    // tenant_evict events; budgets-on runs must carry none (budgeted
    // tenants only ever self-evict).
    let events = kloc_trace::Event::parse_all(&baseline).expect("tenant trace parses");
    let mut evictions_per_run = vec![0u64];
    for ev in &events {
        if matches!(ev, kloc_trace::Event::RunEnd { .. }) {
            evictions_per_run.push(0);
        }
        if matches!(ev, kloc_trace::Event::TenantEvict { .. }) {
            if let Some(last) = evictions_per_run.last_mut() {
                *last += 1;
            }
        }
    }
    assert!(
        evictions_per_run[0] > 0,
        "budgets-off run must emit tenant_evict events"
    );
    assert_eq!(
        evictions_per_run[1], 0,
        "budgets-on run must emit no tenant_evict events"
    );
    for jobs in [2usize, 8] {
        let got = collect(&Runner::new(jobs), matrix(None));
        assert_same_trace(&got, &baseline, &format!("tenants --jobs {jobs}"));
    }
    let sharded_baseline = collect(&Runner::serial(), matrix(Some(1)));
    for shards in [2u32, 4, 8] {
        let got = collect(&Runner::serial(), matrix(Some(shards)));
        assert_same_trace(
            &got,
            &sharded_baseline,
            &format!("tenants --shards {shards}"),
        );
    }
}

#[test]
fn no_session_produces_no_trace() {
    let _session = SESSION.lock().unwrap();
    assert!(!kloc_trace::session_active());
    Runner::serial()
        .run_all(vec![cell(WorkloadKind::Redis, PolicyKind::Naive)])
        .expect("run succeeds");
    assert_eq!(kloc_trace::session_take(), "");
}
