//! # kloc-sim — experiment harness
//!
//! Couples the tiered memory substrate, the simulated kernel, a tiering
//! policy, and a workload into one deterministic run ([`engine`]), and
//! packages the paper's evaluation as runnable experiments
//! ([`experiments`]): one module per figure/table that returns
//! structured rows and can print the paper-style output.
//!
//! The `repro` binary drives it:
//!
//! ```text
//! repro fig4            # two-tier speedups (paper Fig. 4)
//! repro fig2a --scale small
//! repro all             # every experiment
//! ```
//!
//! ```no_run
//! use kloc_sim::engine::RunConfig;
//! use kloc_policy::PolicyKind;
//! use kloc_workloads::{Scale, WorkloadKind};
//!
//! let config = RunConfig::two_tier(WorkloadKind::RocksDb, PolicyKind::Kloc, Scale::large());
//! let report = kloc_sim::engine::run(&config).unwrap();
//! println!("{:.0} ops/s", report.throughput());
//! ```

#![warn(missing_docs)]

#[cfg(feature = "kfault")]
pub mod chaos;
#[cfg(feature = "kfault")]
pub mod crashsweep;
pub mod engine;
pub mod experiments;
pub mod ktrace;
pub mod report;
pub mod runner;

pub use engine::{Platform, RunConfig, RunReport, TenantReport};
pub use report::Table;
pub use runner::{Job, Runner};
