//! Plain-text table rendering for experiment output.

use std::fmt;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor (row, column).
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(String::as_str)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "\n== {} ==", self.title)?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    write!(f, "{:<w$}", c, w = widths[i])?;
                } else {
                    write!(f, "  {:>w$}", c, w = widths[i])?;
                }
            }
            writeln!(f)
        };
        render(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimals (e.g. speedups).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a byte count human-readably.
pub fn bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1}MB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.to_string();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("long-name"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(0, 1), Some("1"));
        assert_eq!(t.cell(9, 0), None);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(bytes(512), "512B");
        assert_eq!(bytes(2048), "2.0KB");
        assert_eq!(bytes(3 << 20), "3.0MB");
    }
}
