//! The run engine: one (platform, policy, workload, scale) execution.

use kloc_core::overhead::{self, OverheadReport};
use kloc_core::KlocStats;
use kloc_kernel::hooks::Ctx;
use kloc_kernel::{Kernel, KernelError, KernelParams, KernelStats};
use kloc_mem::{FaultPlan, MemStats, MemorySystem, MigrationStats, Nanos, TenantId, TierId};
use kloc_policy::{Policy, PolicyKind};
use kloc_workloads::{Scale, WorkloadKind};

/// Hardware platform of a run (paper Table 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Platform {
    /// Software-managed two-tier memory: `fast_bytes` of fast DRAM over
    /// an unbounded slow tier with a `bw_ratio` bandwidth differential.
    TwoTier {
        /// Fast-tier capacity in bytes.
        fast_bytes: u64,
        /// Fast:slow bandwidth ratio (8 = the paper's default "1:8").
        bw_ratio: u64,
    },
    /// Optane Memory Mode: two sockets of PMEM fronted by DRAM L4
    /// caches; see [`OptaneScenario`].
    Optane {
        /// Per-socket L4 DRAM cache bytes.
        l4_bytes: u64,
        /// Scenario staging.
        scenario: OptaneScenario,
    },
}

/// How the Optane/AutoNUMA experiment is staged (paper §6.2: the
/// workload shares a socket with a streaming co-runner; when interference
/// begins to hurt, the scheduler moves it to the other socket).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptaneScenario {
    /// Everything stays local, no interference (the "all local" ideal).
    AllLocal,
    /// Data on socket 0 (shared with the interfering streamer), task
    /// runs on socket 1, nothing migrates — the "all remote" worst case
    /// used as the Fig. 5a baseline.
    AllRemote,
    /// Interference starts mid-run on socket 0; the scheduler moves the
    /// task to socket 1 and the policy may (or may not) migrate data.
    Interfered {
        /// Contention multiplier applied to socket 0's tier.
        contention: f64,
    },
}

impl Platform {
    /// The paper's default two-tier configuration: 8 GB fast at a 1:8
    /// bandwidth differential — scaled 1024x like [`Scale::large`].
    pub fn default_two_tier() -> Self {
        Platform::TwoTier {
            fast_bytes: 8 << 20,
            bw_ratio: 8,
        }
    }

    /// Default Optane Memory Mode with the interference scenario.
    pub fn default_optane() -> Self {
        Platform::Optane {
            l4_bytes: 4 << 20,
            scenario: OptaneScenario::Interfered { contention: 1.8 },
        }
    }
}

/// Process-wide default shard count (0 = use [`KernelParams::default`]).
/// Applied only to runs without an explicit `kernel_params` override, so
/// tests pinning a shard count are unaffected. Set once at CLI startup
/// (`repro --shards`, `perfbench --shards`); sharding is observably
/// inert, so this cannot perturb reports — it exists to measure that.
static DEFAULT_SHARDS: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);

/// Overrides the shard count used for runs without explicit kernel
/// parameters. `0` restores the built-in default.
pub fn set_default_shards(shards: u32) {
    DEFAULT_SHARDS.store(shards, std::sync::atomic::Ordering::Relaxed);
}

/// The process-wide default shard count (0 = built-in default). Lets
/// the non-engine harnesses (chaos soak) honor `repro --shards` so
/// their reports can be byte-compared across shard counts too.
#[cfg(feature = "kfault")]
pub(crate) fn default_shards() -> u32 {
    DEFAULT_SHARDS.load(std::sync::atomic::Ordering::Relaxed)
}

/// One scheduled mid-run budget reconfiguration — the engine-level
/// `sys_kloc_memsize` schedule (DESIGN.md §13). Applied during the
/// measured phase at the first op boundary where the virtual clock has
/// reached [`BudgetEvent::at`]; a shrink is enforced by gradual
/// self-eviction, never a stall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetEvent {
    /// Virtual time at (or after) which the resize applies.
    pub at: Nanos,
    /// Tenant being resized (must be registered by the workload).
    pub tenant: TenantId,
    /// New page-cache cap (`None` = uncapped).
    pub pc_budget: Option<u64>,
    /// New fast-tier cap for kernel pages (`None` = uncapped).
    pub fast_budget_frames: Option<u64>,
}

/// One run's configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Workload to run.
    pub workload: WorkloadKind,
    /// Policy under test.
    pub policy: PolicyKind,
    /// Scale.
    pub scale: Scale,
    /// Platform.
    pub platform: Platform,
    /// Kernel parameter override (None = derived from the scale).
    pub kernel_params: Option<KernelParams>,
    /// Fault plan injected into the run (kfault). `None` (or an empty
    /// plan) leaves the run fault-free; without the `kfault` feature the
    /// plan is ignored entirely.
    pub faults: Option<FaultPlan>,
    /// Mid-run budget resizes, applied in (time, tenant) order during
    /// the measured phase. Empty for steady-state runs.
    pub budgets: Vec<BudgetEvent>,
}

impl RunConfig {
    /// Config on the default two-tier platform.
    pub fn two_tier(workload: WorkloadKind, policy: PolicyKind, scale: Scale) -> Self {
        RunConfig {
            workload,
            policy,
            scale,
            platform: Platform::default_two_tier(),
            kernel_params: None,
            faults: None,
            budgets: Vec::new(),
        }
    }
}

/// Per-tenant breakdown of one multi-tenant run (empty for
/// single-tenant runs). Counters are snapshotted with the rest of the
/// report, before teardown.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TenantReport {
    /// Tenant id (`TenantId.0`).
    pub id: u16,
    /// Tenant name from its spec.
    pub name: String,
    /// QoS class label ("guaranteed", "burstable", "best-effort").
    pub qos: String,
    /// The tenant's page-cache cap, if budgeted.
    pub pc_budget: Option<u64>,
    /// The tenant's fast-tier cap for kernel pages, if budgeted.
    pub fast_budget_frames: Option<u64>,
    /// Kernel-side per-tenant counters.
    pub stats: kloc_kernel::TenantStats,
    /// Accesses this tenant made to knodes owned by *other* tenants
    /// (shared-inode/shared-socket attribution; `None` when the policy
    /// has no KLOC registry).
    pub shared_accesses: Option<u64>,
}

/// Everything measured in one run.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunReport {
    /// Workload label.
    pub workload: String,
    /// Policy label.
    pub policy: String,
    /// Operations completed in the measured phase.
    pub ops: u64,
    /// Virtual time of the measured phase.
    pub elapsed: Nanos,
    /// Virtual time of the setup (load) phase.
    pub setup_time: Nanos,
    /// Substrate counters at the end of the run.
    pub mem: MemStats,
    /// Kernel counters.
    pub kernel: KernelStats,
    /// Migration counters.
    pub migrations: MigrationStats,
    /// KLOC counters, when the policy has a registry.
    pub kloc: Option<KlocStats>,
    /// KLOC metadata overhead, when applicable.
    pub overhead: Option<OverheadReport>,
    /// Per-CPU fast-path hit ratio, when applicable (§4.3 ablation).
    pub percpu_hit_ratio: Option<f64>,
    /// Kmap tree traversals, when applicable.
    pub kmap_tree_accesses: Option<u64>,
    /// Readahead pages issued / useful.
    pub readahead_issued: u64,
    /// Readahead pages that were subsequently used.
    pub readahead_useful: u64,
    /// Disk I/O operations that failed (kfault injection; zero on
    /// faultless runs).
    pub io_errors: u64,
    /// blk-mq retries issued after failed disk operations.
    pub io_retries: u64,
    /// Accesses to each tier during the measured phase only.
    pub measured_tier_accesses: Vec<u64>,
    /// Fast-tier frames resident at the end of the measured phase.
    pub fast_resident: u64,
    /// Mean age of live application pages at the end of the measured
    /// phase (app pages outlive the run; Fig. 2d needs their lifetime).
    pub app_page_age: Nanos,
    /// Per-tenant breakdown, in tenant-id order (empty unless the
    /// workload declared tenants).
    pub tenants: Vec<TenantReport>,
}

impl RunReport {
    /// Fraction of measured-phase accesses served by tier 0 (fast/local).
    pub fn fast_access_fraction(&self) -> f64 {
        let total: u64 = self.measured_tier_accesses.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.measured_tier_accesses[0] as f64 / total as f64
        }
    }

    /// Measured throughput in operations per virtual second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }

    /// Speedup of this run over a baseline run of the same workload.
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        let b = baseline.throughput();
        if b <= 0.0 {
            0.0
        } else {
            self.throughput() / b
        }
    }
}

/// KSAN driver state: schedules cross-structure audits at a fixed op
/// interval during the measured phase and tracks virtual-clock
/// monotonicity across the whole run. Compiled in only with the `ksan`
/// feature; audits are observation-only, so run reports are
/// byte-identical with the feature on or off.
#[cfg(feature = "ksan")]
struct KsanState {
    interval: u64,
    ops_since_audit: u64,
    clock: kloc_mem::ksan::ClockMonitor,
}

#[cfg(feature = "ksan")]
impl KsanState {
    /// Default audit interval in measured-phase operations; override
    /// with `KLOC_KSAN_INTERVAL` (the sim crate is the deterministic
    /// harness boundary, so an env read is allowed here).
    const DEFAULT_INTERVAL: u64 = 256;

    fn new() -> Self {
        let interval = std::env::var("KLOC_KSAN_INTERVAL")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(Self::DEFAULT_INTERVAL);
        KsanState {
            interval,
            ops_since_audit: 0,
            clock: kloc_mem::ksan::ClockMonitor::new(),
        }
    }

    /// Runs every audit the simulation exposes and panics with the
    /// collected report if any structure pair disagrees.
    fn audit(&mut self, context: &str, mem: &MemorySystem, kernel: &Kernel, policy: &dyn Policy) {
        let mut out = Vec::new();
        mem.ksan_audit(&mut out);
        kernel.ksan_audit(mem, &mut out);
        if let Some(reg) = policy.registry() {
            reg.ksan_audit(&mut out);
        }
        self.clock.observe(mem.now(), &mut out);
        kloc_mem::ksan::enforce(context, &out);
    }

    /// Called once per measured-phase op; audits every `interval` ops.
    fn step(&mut self, mem: &MemorySystem, kernel: &Kernel, policy: &dyn Policy) {
        self.ops_since_audit += 1;
        if self.ops_since_audit >= self.interval {
            self.ops_since_audit = 0;
            self.audit("measured phase", mem, kernel, policy);
        }
    }
}

/// Compact platform descriptor for the `run_begin` trace event.
fn platform_label(platform: &Platform) -> String {
    match *platform {
        Platform::TwoTier {
            fast_bytes,
            bw_ratio,
        } => format!("two_tier:fast={fast_bytes}:bw={bw_ratio}"),
        Platform::Optane { l4_bytes, scenario } => {
            let sc = match scenario {
                OptaneScenario::AllLocal => "all_local".to_owned(),
                OptaneScenario::AllRemote => "all_remote".to_owned(),
                OptaneScenario::Interfered { contention } => {
                    format!("interfered={}", to_milli(contention))
                }
            };
            format!("optane:l4={l4_bytes}:{sc}")
        }
    }
}

/// Converts a contention multiplier to integer thousandths for tracing.
fn to_milli(x: f64) -> u64 {
    (x * 1000.0).round() as u64
}

/// Builds the memory system for a config, giving the bound policies
/// (All-Fast) an unbounded fast tier as the paper's ideal case does.
fn build_mem(config: &RunConfig) -> MemorySystem {
    match config.platform {
        Platform::TwoTier {
            fast_bytes,
            bw_ratio,
        } => {
            let fast = if config.policy == PolicyKind::AllFast {
                u64::MAX
            } else {
                fast_bytes
            };
            MemorySystem::two_tier(fast, bw_ratio)
        }
        Platform::Optane { l4_bytes, .. } => MemorySystem::optane_memory_mode(l4_bytes),
    }
}

/// Executes one run.
///
/// # Errors
/// Propagates kernel errors (indicating a harness bug; workloads only
/// issue valid operations).
pub fn run(config: &RunConfig) -> Result<RunReport, KernelError> {
    run_with(config, config.policy.build())
}

/// Executes one run with an explicitly constructed policy (used by the
/// Fig. 5c inclusion sweep and the ablations, which need custom policy
/// configurations).
///
/// # Errors
/// Propagates kernel errors.
pub fn run_with(config: &RunConfig, mut policy: Box<dyn Policy>) -> Result<RunReport, KernelError> {
    if kloc_trace::session_active() {
        // Install a per-run recorder on this worker thread. The runner
        // collects it with `kloc_trace::run_take()` after the run and
        // appends buffers to the session in input order, which is what
        // keeps session bytes independent of the worker count.
        kloc_trace::run_begin();
    }
    kloc_trace::emit(|| kloc_trace::Event::RunBegin {
        t: 0,
        workload: config.workload.label().to_owned(),
        policy: config.policy.label().to_owned(),
        platform: platform_label(&config.platform),
        seed: config.scale.seed,
        ops: config.scale.ops,
    });
    let mut mem = build_mem(config);
    mem.set_migration_cost(policy.migration_cost());
    mem.set_cpu_parallelism(config.scale.threads.max(1) as u64);
    if let Some(plan) = &config.faults {
        mem.set_fault_plan(plan.clone());
    }

    let mut params = config.kernel_params.clone().unwrap_or_else(|| {
        let mut p = KernelParams {
            page_cache_budget: config.scale.page_cache_frames,
            ..KernelParams::default()
        };
        let shards = DEFAULT_SHARDS.load(std::sync::atomic::Ordering::Relaxed);
        if shards != 0 {
            p.shards = shards;
        }
        p
    });
    // `KLOC_BATCH=0` forces the per-access charge path — an A/B switch
    // for verifying that batching is report-inert (the sim crate is the
    // deterministic boundary, so env reads live here, not in the model
    // crates).
    if std::env::var("KLOC_BATCH").as_deref() == Ok("0") {
        params.batch_accesses = false;
    }
    // One shard count drives every sharded hot-path structure (frame
    // free lists, page-cache LRU, cache reverse map).
    mem.set_shards(kloc_mem::ShardConfig::with_shards(params.shards));
    let mut kernel = Kernel::new(params);
    let mut workload = config.workload.build(&config.scale);

    // Multi-tenant runs: install the workload's tenant specs in the
    // kernel (budget enforcement, stat attribution) and the policy
    // (per-tenant placement budgets) before any allocation happens.
    let tenant_specs = workload.tenant_specs();
    for spec in &tenant_specs {
        kernel.register_tenant(spec.clone());
    }
    if !tenant_specs.is_empty() {
        policy.configure_tenants(&tenant_specs);
    }

    // Optane staging.
    let (mut task_socket, switch_at_op, scenario) = match config.platform {
        Platform::Optane { scenario, .. } => match scenario {
            OptaneScenario::AllLocal => (0u8, u64::MAX, Some(scenario)),
            OptaneScenario::AllRemote => (0u8, 0, Some(scenario)),
            OptaneScenario::Interfered { .. } => (0u8, config.scale.ops / 3, Some(scenario)),
        },
        Platform::TwoTier { .. } => (0u8, u64::MAX, None),
    };
    policy.set_task_socket(task_socket);
    if let Some(OptaneScenario::AllRemote) = scenario {
        // Worst case: the streamer contends on the data's socket for the
        // whole run, and the task computes from the other socket.
        mem.set_contention(TierId(0), 1.8);
        kloc_trace::emit(|| kloc_trace::Event::Contention {
            t: mem.now().as_nanos(),
            tier: 0,
            milli: to_milli(1.8),
        });
    }

    // Setup (load) phase — policies tick during it too.
    let tick_interval = policy.tick_interval();
    let mut next_tick = mem.now() + tick_interval;
    kloc_trace::emit(|| kloc_trace::Event::PhaseBegin {
        t: mem.now().as_nanos(),
        phase: "setup".to_owned(),
    });
    {
        let _phase = kloc_trace::scope("setup");
        let mut ctx = Ctx::new(&mut mem, policy.as_mut());
        ctx.socket = task_socket;
        workload.setup(&mut kernel, &mut ctx)?;
    }
    let setup_time = mem.now();
    kloc_trace::flush(setup_time.as_nanos());
    #[cfg(feature = "ksan")]
    let mut ksan = KsanState::new();
    #[cfg(feature = "ksan")]
    ksan.audit("after setup", &mem, &kernel, policy.as_ref());
    let access_baseline: Vec<u64> = (0..mem.tier_count())
        .map(|i| {
            let t = mem.stats().tier(kloc_mem::TierId(i as u8));
            t.reads + t.writes
        })
        .collect();

    // Measured phase.
    let t0 = mem.now();
    kloc_trace::emit(|| kloc_trace::Event::PhaseBegin {
        t: t0.as_nanos(),
        phase: "measured".to_owned(),
    });
    let measured_scope = kloc_trace::scope("measured");
    // Budget-resize schedule, in (time, tenant) order regardless of how
    // the config listed it — the application order is part of the
    // deterministic contract.
    let mut budgets = config.budgets.clone();
    budgets.sort_by_key(|b| (b.at, b.tenant.0));
    let mut next_budget = 0usize;
    let mut switched = switch_at_op == 0;
    if switched {
        // AllRemote: the task computes on the other socket from the start.
        task_socket = 1;
        // Note: the policy is *not* told (nothing migrates).
    }
    while !workload.is_done() {
        if !switched && workload.ops_done() >= switch_at_op {
            switched = true;
            if let Some(OptaneScenario::Interfered { contention }) = scenario {
                // Interference begins on socket 0; scheduler moves the
                // task to socket 1.
                mem.set_contention(TierId(0), contention);
                kloc_trace::emit(|| kloc_trace::Event::Contention {
                    t: mem.now().as_nanos(),
                    tier: 0,
                    milli: to_milli(contention),
                });
                task_socket = 1;
                policy.set_task_socket(1);
            }
        }
        {
            let mut ctx = Ctx::new(&mut mem, policy.as_mut());
            ctx.socket = task_socket;
            workload.step(&mut kernel, &mut ctx)?;
        }
        // Apply every budget resize the virtual clock has reached. The
        // kernel shrinks gradually; the policy sees the new fast caps
        // on its next placement decision.
        while next_budget < budgets.len() && mem.now() >= budgets[next_budget].at {
            let ev = budgets[next_budget].clone();
            next_budget += 1;
            let before = kernel
                .tenants()
                .spec(ev.tenant)
                .map(|s| (s.pc_budget, s.fast_budget_frames));
            let applied = {
                let mut ctx = Ctx::new(&mut mem, policy.as_mut());
                ctx.socket = task_socket;
                kernel.resize_tenant_budget(&mut ctx, ev.tenant, ev.pc_budget, ev.fast_budget_frames)?
            };
            if applied {
                let (old_pc, old_fast) = before.unwrap_or((None, None));
                let t = mem.now().as_nanos();
                if old_pc != ev.pc_budget {
                    kloc_trace::emit(|| kloc_trace::Event::BudgetResize {
                        t,
                        tenant: u64::from(ev.tenant.0),
                        kind: "pc".to_owned(),
                        from: old_pc.unwrap_or(0),
                        to: ev.pc_budget.unwrap_or(0),
                    });
                }
                if old_fast != ev.fast_budget_frames {
                    kloc_trace::emit(|| kloc_trace::Event::BudgetResize {
                        t,
                        tenant: u64::from(ev.tenant.0),
                        kind: "fast".to_owned(),
                        from: old_fast.unwrap_or(0),
                        to: ev.fast_budget_frames.unwrap_or(0),
                    });
                }
                if let Some(spec) = kernel.tenants().spec(ev.tenant) {
                    policy.configure_tenants(std::slice::from_ref(&spec.clone()));
                }
            }
        }
        if mem.now() >= next_tick {
            let _tick = kloc_trace::scope("policy_tick");
            // Tier drain rides the tick cadence: while an offlining
            // window is open, migrate resident frames off the tier
            // within the per-tick budget (no-op shim without kfault).
            let (db, rb, rc) = {
                let p = kernel.params();
                (p.drain_budget_frames, p.drain_retry_base, p.drain_retry_cap)
            };
            mem.drain_offline(db, rb, rc);
            policy.tick(&kernel, &mut mem);
            next_tick = mem.now() + tick_interval;
        }
        #[cfg(feature = "ksan")]
        ksan.step(&mem, &kernel, policy.as_ref());
    }
    #[cfg(feature = "ksan")]
    ksan.audit("end of measured phase", &mem, &kernel, policy.as_ref());
    drop(measured_scope);
    let elapsed = mem.now() - t0;
    kloc_trace::flush(mem.now().as_nanos());
    let measured_tier_accesses: Vec<u64> = (0..mem.tier_count())
        .map(|i| {
            let t = mem.stats().tier(kloc_mem::TierId(i as u8));
            t.reads + t.writes - access_baseline[i]
        })
        .collect();
    let fast_resident = mem.stats().tier(TierId(0)).frames_resident;
    let app_page_age = mem.mean_live_age(kloc_mem::PageKind::AppData);
    // Snapshot counters before teardown (closing handles and freeing app
    // memory would otherwise pollute the measurement).
    let mem_stats = mem.stats().clone();
    let kernel_stats = kernel.stats().clone();
    let migrations = mem.migration_stats().clone();

    // Per-tenant breakdown, snapshotted with the other counters (the
    // teardown below drops cached pages and would zero pc_resident).
    let tenants: Vec<TenantReport> = tenant_specs
        .iter()
        .map(|spec| TenantReport {
            id: spec.id.0,
            name: spec.name.clone(),
            qos: spec.qos.to_string(),
            pc_budget: spec.pc_budget,
            fast_budget_frames: spec.fast_budget_frames,
            stats: kernel.tenant_stats(spec.id),
            shared_accesses: policy.registry().map(|r| r.shared_accesses_of(spec.id)),
        })
        .collect();

    // Capture KLOC state before teardown destroys knodes.
    let kloc = policy.kloc_stats();
    let peak_batch = policy.peak_migration_batch();
    let (overhead, percpu_hit_ratio, kmap_tree_accesses) = match policy.registry() {
        Some(r) => (
            Some(overhead::measure(r, peak_batch)),
            Some(r.percpu().hit_ratio()),
            Some(r.kmap().tree_accesses()),
        ),
        None => (None, None, None),
    };

    kloc_trace::emit(|| kloc_trace::Event::PhaseBegin {
        t: mem.now().as_nanos(),
        phase: "teardown".to_owned(),
    });
    {
        let _phase = kloc_trace::scope("teardown");
        let mut ctx = Ctx::new(&mut mem, policy.as_mut());
        ctx.socket = task_socket;
        workload.teardown(&mut kernel, &mut ctx)?;
    }
    let end_t = mem.now().as_nanos();
    kloc_trace::flush(end_t);
    kloc_trace::emit(|| kloc_trace::Event::RunEnd {
        t: end_t,
        ops: workload.ops_done(),
    });

    Ok(RunReport {
        workload: config.workload.label().to_owned(),
        policy: config.policy.label().to_owned(),
        ops: workload.ops_done(),
        elapsed,
        setup_time,
        mem: mem_stats,
        kernel: kernel_stats,
        migrations,
        kloc,
        overhead,
        percpu_hit_ratio,
        kmap_tree_accesses,
        readahead_issued: kernel.readahead().stats().issued,
        readahead_useful: kernel.readahead().stats().useful,
        io_errors: kernel.disk().stats().io_errors,
        io_retries: kernel.disk().stats().retries,
        measured_tier_accesses,
        fast_resident,
        app_page_age,
        tenants,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(policy: PolicyKind) -> RunConfig {
        RunConfig {
            workload: WorkloadKind::RocksDb,
            policy,
            scale: Scale::tiny(),
            platform: Platform::TwoTier {
                fast_bytes: 512 << 10,
                bw_ratio: 8,
            },
            kernel_params: None,
            faults: None,
            budgets: Vec::new(),
        }
    }

    #[test]
    fn runs_complete_and_count_ops() {
        let r = run(&cfg(PolicyKind::Naive)).unwrap();
        assert_eq!(r.ops, Scale::tiny().ops);
        assert!(r.elapsed > Nanos::ZERO);
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn deterministic_for_same_config() {
        let a = run(&cfg(PolicyKind::Kloc)).unwrap();
        let b = run(&cfg(PolicyKind::Kloc)).unwrap();
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.migrations, b.migrations);
    }

    #[test]
    fn all_fast_beats_all_slow() {
        let fast = run(&cfg(PolicyKind::AllFast)).unwrap();
        let slow = run(&cfg(PolicyKind::AllSlow)).unwrap();
        let speedup = fast.speedup_over(&slow);
        assert!(
            speedup > 1.2,
            "All-Fast must clearly beat All-Slow, got {speedup:.2}x"
        );
    }

    #[test]
    fn kloc_reports_registry_state() {
        let r = run(&cfg(PolicyKind::Kloc)).unwrap();
        assert!(r.kloc.is_some());
        assert!(r.overhead.is_some());
        assert!(r.kloc.unwrap().knodes_created > 0);
        let naive = run(&cfg(PolicyKind::Naive)).unwrap();
        assert!(naive.kloc.is_none());
    }

    #[test]
    fn optane_scenarios_order_correctly() {
        let mk = |scenario| RunConfig {
            workload: WorkloadKind::Redis,
            policy: PolicyKind::AutoNumaKloc,
            scale: Scale::tiny(),
            platform: Platform::Optane {
                l4_bytes: 1 << 20,
                scenario,
            },
            kernel_params: None,
            faults: None,
            budgets: Vec::new(),
        };
        let local = run(&mk(OptaneScenario::AllLocal)).unwrap();
        let remote = run(&mk(OptaneScenario::AllRemote)).unwrap();
        assert!(
            local.throughput() > remote.throughput(),
            "all-local must beat all-remote"
        );
    }
}
