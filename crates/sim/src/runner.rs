//! Parallel sweep runner.
//!
//! Every experiment in the paper is a sweep of *independent,
//! deterministic* [`engine::run`] calls — dozens of (workload, policy,
//! platform) combinations whose results are only aggregated at the end.
//! The seed executed them strictly serially; this module fans a batch
//! across OS threads with a work-stealing scheduler built entirely on
//! `std` (`thread::scope` + atomics — offline builds carry no external
//! crates).
//!
//! Guarantees:
//!
//! * **Input order is preserved** — `run_all(configs)[i]` corresponds to
//!   `configs[i]`, regardless of which worker executed it.
//! * **Byte-identical to serial** — each run owns its whole simulated
//!   world (memory system, kernel, policy, workload), so parallel
//!   execution cannot perturb virtual time. `Runner::serial()` and a
//!   parallel runner produce equal [`RunReport`]s
//!   (`runner_matches_serial` in `tests/runner.rs` enforces this).
//!
//! Scheduling: the batch index space is split evenly into per-worker
//! intervals. A worker pops from the *front* of its own interval; when
//! it runs dry it steals the *back half* of the largest remaining
//! interval. Both ends mutate one packed `AtomicU64` per interval via
//! compare-exchange, so no locks are held while claiming work. Single
//! runs vary from micro- to multi-second depending on scale and policy,
//! which is exactly the imbalance work stealing absorbs.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use kloc_kernel::KernelError;
use kloc_policy::Policy;

use crate::engine::{self, RunConfig, RunReport};

/// Builds the policy for a [`Job`] that needs more than
/// [`RunConfig::policy`]`.build()` (custom [`kloc_core::KlocConfig`]s,
/// the Fig. 5 strategy stacks, ablation variants). Called on the worker
/// thread that executes the job.
pub type PolicyFactory = Box<dyn Fn() -> Box<dyn Policy> + Send + Sync>;

/// One schedulable run: a config plus an optional custom policy.
pub struct Job {
    config: RunConfig,
    policy: Option<PolicyFactory>,
}

impl Job {
    /// A job executed as [`engine::run`] (policy built from the config).
    pub fn new(config: RunConfig) -> Self {
        Job {
            config,
            policy: None,
        }
    }

    /// A job executed as [`engine::run_with`] using a custom policy.
    pub fn with_policy(config: RunConfig, policy: PolicyFactory) -> Self {
        Job {
            config,
            policy: Some(policy),
        }
    }

    /// The job's configuration.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Runs the job and collects the worker thread's trace buffer (empty
    /// unless a trace session is active). Taking the buffer here also
    /// clears any recorder a failed run left installed, so a worker
    /// thread never leaks trace state into its next job.
    fn execute(&self) -> (Result<RunReport, KernelError>, String) {
        let result = match &self.policy {
            Some(factory) => engine::run_with(&self.config, factory()),
            None => engine::run(&self.config),
        };
        (result, kloc_trace::run_take())
    }
}

impl From<RunConfig> for Job {
    fn from(config: RunConfig) -> Self {
        Job::new(config)
    }
}

/// A fixed-width thread pool for experiment sweeps.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    jobs: usize,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::auto()
    }
}

impl Runner {
    /// A runner with exactly `jobs` worker threads (clamped to >= 1).
    pub fn new(jobs: usize) -> Self {
        Runner { jobs: jobs.max(1) }
    }

    /// Strictly serial execution on the calling thread.
    pub fn serial() -> Self {
        Runner::new(1)
    }

    /// One worker per available hardware thread.
    pub fn auto() -> Self {
        let n = thread::available_parallelism().map_or(1, usize::from);
        Runner::new(n)
    }

    /// Worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs a batch of plain configs; results are in input order.
    ///
    /// # Errors
    /// Returns the first (by input order) kernel error, if any run fails.
    pub fn run_all(&self, configs: Vec<RunConfig>) -> Result<Vec<RunReport>, KernelError> {
        self.run_jobs(configs.into_iter().map(Job::new).collect())
    }

    /// Runs a batch of jobs; results are in input order.
    ///
    /// # Errors
    /// Returns the first (by input order) kernel error, if any run fails.
    pub fn run_jobs(&self, jobs: Vec<Job>) -> Result<Vec<RunReport>, KernelError> {
        let n = jobs.len();
        let workers = self.jobs.min(n.max(1));
        if workers <= 1 {
            let mut reports = Vec::with_capacity(n);
            for job in &jobs {
                let (result, trace) = job.execute();
                kloc_trace::session_append(&trace);
                reports.push(result?);
            }
            return Ok(reports);
        }

        type Slot = Mutex<Option<(Result<RunReport, KernelError>, String)>>;
        let mut results: Vec<Slot> = (0..n).map(|_| Mutex::new(None)).collect();
        let completed = AtomicUsize::new(0);

        // Even initial split of [0, n) across workers.
        let intervals: Vec<Interval> = (0..workers)
            .map(|w| {
                let lo = n * w / workers;
                let hi = n * (w + 1) / workers;
                Interval::new(lo as u32, hi as u32)
            })
            .collect();

        thread::scope(|s| {
            for me in 0..workers {
                let jobs = &jobs;
                let results = &results;
                let completed = &completed;
                let intervals = &intervals;
                s.spawn(move || {
                    loop {
                        // Drain our own interval from the front.
                        while let Some(i) = intervals[me].pop_front() {
                            let r = jobs[i as usize].execute();
                            *results[i as usize].lock().expect("result lock") = Some(r);
                            completed.fetch_add(1, Ordering::Release);
                        }
                        if completed.load(Ordering::Acquire) >= n {
                            break;
                        }
                        // Steal the back half of the fullest other queue.
                        let victim = (0..workers)
                            .filter(|&w| w != me)
                            .max_by_key(|&w| intervals[w].len());
                        let stolen = victim.and_then(|w| intervals[w].steal_back_half());
                        match stolen {
                            Some((lo, hi)) => intervals[me].replenish(lo, hi),
                            // Everything is claimed but stragglers are
                            // still running; wait for them to finish (they
                            // may yet fail, so we cannot return early).
                            None => thread::yield_now(),
                        }
                    }
                });
            }
        });

        debug_assert!(results.iter().all(|m| m.lock().unwrap().is_some()));
        // Append per-run trace buffers in input order — regardless of
        // which worker ran which job — then surface the first (by input
        // order) error, matching serial semantics.
        let mut reports = Vec::with_capacity(n);
        for m in &mut results {
            let (result, trace) = m
                .get_mut()
                .expect("result lock")
                .take()
                .expect("all jobs completed");
            kloc_trace::session_append(&trace);
            reports.push(result);
        }
        reports.into_iter().collect()
    }
}

/// A half-open index interval `[lo, hi)` packed into one `AtomicU64`
/// (`lo` in the high 32 bits). The owning worker pops `lo`; thieves
/// shrink `hi`. All transitions go through compare-exchange on the same
/// word, so the two ends cannot race past each other.
struct Interval(AtomicU64);

fn pack(lo: u32, hi: u32) -> u64 {
    (u64::from(lo) << 32) | u64::from(hi)
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

impl Interval {
    fn new(lo: u32, hi: u32) -> Self {
        Interval(AtomicU64::new(pack(lo, hi)))
    }

    /// Remaining jobs in the interval.
    fn len(&self) -> u32 {
        let (lo, hi) = unpack(self.0.load(Ordering::Relaxed));
        hi.saturating_sub(lo)
    }

    /// Claims the front index, if any.
    fn pop_front(&self) -> Option<u32> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                pack(lo + 1, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(lo),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Steals the back half (at least one job) of the interval.
    fn steal_back_half(&self) -> Option<(u32, u32)> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            let keep = (hi - lo) / 2; // victim keeps the front half
            let mid = lo + keep;
            match self.0.compare_exchange_weak(
                cur,
                pack(lo, mid),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((mid, hi)),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Installs a stolen range; only the owner calls this, and only when
    /// its interval is empty (thieves bounce off empty intervals, so the
    /// store cannot clobber a concurrent steal).
    fn replenish(&self, lo: u32, hi: u32) {
        debug_assert_eq!(self.len(), 0);
        self.0.store(pack(lo, hi), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kloc_policy::PolicyKind;
    use kloc_workloads::{Scale, WorkloadKind};

    use crate::engine::Platform;

    fn cfg(policy: PolicyKind, w: WorkloadKind) -> RunConfig {
        RunConfig {
            workload: w,
            policy,
            scale: Scale::tiny(),
            platform: Platform::TwoTier {
                fast_bytes: 512 << 10,
                bw_ratio: 8,
            },
            kernel_params: None,
            faults: None,
            budgets: Vec::new(),
        }
    }

    #[test]
    fn preserves_input_order() {
        let configs = vec![
            cfg(PolicyKind::Naive, WorkloadKind::RocksDb),
            cfg(PolicyKind::Kloc, WorkloadKind::Redis),
            cfg(PolicyKind::AllSlow, WorkloadKind::RocksDb),
        ];
        let reports = Runner::new(3).run_all(configs).unwrap();
        assert_eq!(reports[0].policy, PolicyKind::Naive.label());
        assert_eq!(reports[0].workload, WorkloadKind::RocksDb.label());
        assert_eq!(reports[1].policy, PolicyKind::Kloc.label());
        assert_eq!(reports[1].workload, WorkloadKind::Redis.label());
        assert_eq!(reports[2].policy, PolicyKind::AllSlow.label());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let reports = Runner::new(64)
            .run_all(vec![cfg(PolicyKind::Naive, WorkloadKind::RocksDb)])
            .unwrap();
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(Runner::auto().run_all(Vec::new()).unwrap().is_empty());
    }

    #[test]
    fn custom_policy_jobs_run() {
        let job = Job::with_policy(
            cfg(PolicyKind::Kloc, WorkloadKind::RocksDb),
            Box::new(|| Box::new(kloc_policy::KlocPolicy::new())),
        );
        let reports = Runner::new(2).run_jobs(vec![job]).unwrap();
        assert!(reports[0].kloc.is_some());
    }

    #[test]
    fn interval_pop_and_steal_partition_the_range() {
        let iv = Interval::new(0, 10);
        assert_eq!(iv.pop_front(), Some(0));
        let (lo, hi) = iv.steal_back_half().unwrap();
        // Victim kept [1, 5), thief got [5, 10).
        assert_eq!((lo, hi), (5, 10));
        assert_eq!(iv.len(), 4);
        let mut rest = Vec::new();
        while let Some(i) = iv.pop_front() {
            rest.push(i);
        }
        assert_eq!(rest, vec![1, 2, 3, 4]);
        assert_eq!(iv.steal_back_half(), None);
    }

    #[test]
    fn steal_takes_singleton() {
        let iv = Interval::new(3, 4);
        assert_eq!(iv.steal_back_half(), Some((3, 4)));
        assert_eq!(iv.pop_front(), None);
    }
}
