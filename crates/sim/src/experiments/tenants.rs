//! Tenant isolation — the consolidated-server experiment (DESIGN.md §12).
//!
//! Runs the [`MultiTenant`](kloc_workloads::MultiTenant) workload twice
//! under the KLOC policy — once with per-tenant budgets off, once with
//! them on — and renders a Fig. 4-style per-tenant breakdown. The claim
//! under test is the paper's consolidation motivation (§5): without
//! budgets, the best-effort churn tenant's kernel-object allocations
//! evict the guaranteed tenant's hot page-cache pages through the global
//! shrinker; with per-tenant budgets (the `sys_kloc_memsize` analog)
//! each tenant reclaims from itself and cross-tenant evictions drop to
//! zero.

use kloc_kernel::KernelError;
use kloc_policy::PolicyKind;
use kloc_workloads::{Scale, WorkloadKind};

use crate::engine::{Platform, RunConfig, RunReport};
use crate::report::Table;
use crate::runner::Runner;

/// The budgets-off / budgets-on pair of runs.
#[derive(Debug, Clone)]
pub struct TenantIsolation {
    /// Budgets off: tenants share the kernel unprotected.
    pub off: RunReport,
    /// Budgets on: per-tenant page-cache and fast-tier caps.
    pub on: RunReport,
}

impl TenantIsolation {
    /// Total cross-tenant evictions suffered across all tenants of a
    /// report.
    fn cross_suffered(report: &RunReport) -> u64 {
        report
            .tenants
            .iter()
            .map(|t| t.stats.cross_evictions_suffered)
            .sum()
    }

    /// Whether budgets demonstrably isolate the tenants: the
    /// unprotected run shows cross-tenant evictions and the budgeted
    /// run shows none.
    pub fn isolated(&self) -> bool {
        Self::cross_suffered(&self.off) > 0 && Self::cross_suffered(&self.on) == 0
    }

    /// One-line verdict for CLI output.
    pub fn verdict(&self) -> String {
        format!(
            "cross-tenant evictions: {} without budgets -> {} with budgets ({})",
            Self::cross_suffered(&self.off),
            Self::cross_suffered(&self.on),
            if self.isolated() {
                "isolated"
            } else {
                "NOT isolated"
            }
        )
    }
}

/// Runs the budgets-off/budgets-on pair under the KLOC policy.
///
/// # Errors
/// Propagates kernel errors.
pub fn run(
    runner: &Runner,
    scale: &Scale,
    platform: Platform,
) -> Result<TenantIsolation, KernelError> {
    let cfg = |budgeted| RunConfig {
        workload: WorkloadKind::Tenants { budgeted },
        policy: PolicyKind::Kloc,
        scale: scale.clone(),
        platform,
        kernel_params: None,
        faults: None,
        budgets: Vec::new(),
    };
    let mut reports = runner.run_all(vec![cfg(false), cfg(true)])?;
    let on = reports.pop().expect("two configs in, two reports out"); // lint: unwrap-ok — run_all preserves arity
    let off = reports.pop().expect("two configs in, two reports out"); // lint: unwrap-ok — run_all preserves arity
    Ok(TenantIsolation { off, on })
}

/// Renders the per-tenant breakdown: one row per (mode, tenant).
pub fn table(iso: &TenantIsolation) -> Table {
    let mut t = Table::new(
        "Tenant isolation: per-tenant breakdown (KLOC policy)",
        &[
            "mode",
            "tenant",
            "qos",
            "pc cap",
            "inserted",
            "resident",
            "self-evict",
            "x-caused",
            "x-suffered",
            "tx B",
            "rx B",
            "shared",
        ],
    );
    for (mode, report) in [("no budgets", &iso.off), ("budgeted", &iso.on)] {
        for tr in &report.tenants {
            t.row(vec![
                mode.to_owned(),
                tr.name.clone(),
                tr.qos.clone(),
                tr.pc_budget
                    .map_or_else(|| "-".to_owned(), |b| b.to_string()),
                tr.stats.pc_inserted.to_string(),
                tr.stats.pc_resident.to_string(),
                tr.stats.pc_self_evicted.to_string(),
                tr.stats.cross_evictions_caused.to_string(),
                tr.stats.cross_evictions_suffered.to_string(),
                tr.stats.tx_bytes.to_string(),
                tr.stats.rx_bytes.to_string(),
                tr.shared_accesses
                    .map_or_else(|| "-".to_owned(), |s| s.to_string()),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_flip_cross_evictions_to_zero() {
        let platform = Platform::TwoTier {
            fast_bytes: 512 << 10,
            bw_ratio: 8,
        };
        let iso = run(&Runner::auto(), &Scale::tiny(), platform).unwrap();
        assert!(
            TenantIsolation::cross_suffered(&iso.off) > 0,
            "unprotected churn must cause cross-tenant evictions"
        );
        assert_eq!(
            TenantIsolation::cross_suffered(&iso.on),
            0,
            "budgets must eliminate cross-tenant evictions"
        );
        assert!(iso.isolated());
        // Shared-object attribution: analytics reads frontend-owned
        // objects in both modes.
        for report in [&iso.off, &iso.on] {
            let analytics = report
                .tenants
                .iter()
                .find(|t| t.name == "analytics")
                .expect("analytics tenant reported");
            assert!(analytics.shared_accesses.unwrap_or(0) > 0);
            assert!(analytics.stats.rx_bytes > 0);
        }
        // 2 modes x 3 tenants.
        assert_eq!(table(&iso).len(), 6);
    }
}
