//! One module per paper figure/table.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig2`] | Fig. 2a-2d (motivation: footprints, references, lifetimes) |
//! | [`fig4`] | Fig. 4 (two-tier speedups vs All-Slow) |
//! | [`fig5`] | Fig. 5a (Optane), 5b (sources), 5c (per-object sensitivity) |
//! | [`fig6`] | Fig. 6 (capacity x bandwidth sweep) |
//! | [`table6`] | Table 6 (KLOC metadata memory) |
//! | [`ablations`] | §4.3 per-CPU lists, §7.3 KLOC-aware prefetch |
//! | [`tenants`] | Tenant isolation (consolidated servers, §5 / DESIGN.md §12) |

pub mod ablations;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod table6;
pub mod tenants;
