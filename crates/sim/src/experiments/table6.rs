//! Table 6 — KLOC metadata memory increase per workload.
//!
//! The paper reports the average memory increase of KLOCs vs the
//! All-Fast configuration: 12-101 MB, always <1 % of memory, dominated
//! by the 8-byte member-tree pointers. We report the measured metadata
//! breakdown from the registry at end of run, plus its fraction of the
//! fast tier.

use kloc_core::overhead::OverheadReport;
use kloc_kernel::KernelError;
use kloc_policy::PolicyKind;
use kloc_workloads::{Scale, WorkloadKind};

use crate::engine::{Platform, RunConfig};
use crate::report::{bytes, pct, Table};
use crate::runner::Runner;

/// One workload's overhead row.
#[derive(Debug, Clone)]
pub struct Table6Row {
    /// Workload label.
    pub workload: String,
    /// Metadata breakdown.
    pub overhead: OverheadReport,
    /// Metadata as a fraction of the workload's data footprint (the
    /// paper reports <1 % of overall memory usage).
    pub fraction_of_footprint: f64,
}

/// Runs Table 6 for the given workloads.
///
/// # Errors
/// Propagates kernel errors.
pub fn run(
    runner: &Runner,
    scale: &Scale,
    workloads: &[WorkloadKind],
) -> Result<Vec<Table6Row>, KernelError> {
    let fast_bytes = scale.fast_bytes;
    let configs = workloads
        .iter()
        .map(|&w| RunConfig {
            workload: w,
            policy: PolicyKind::Kloc,
            scale: scale.clone(),
            platform: Platform::TwoTier {
                fast_bytes,
                bw_ratio: 8,
            },
            kernel_params: None,
            faults: None,
            budgets: Vec::new(),
        })
        .collect();
    let reports = runner.run_all(configs)?;
    let rows = workloads
        .iter()
        .zip(reports)
        .map(|(&w, r)| {
            let overhead = r.overhead.expect("KLOC policy reports overhead");
            Table6Row {
                workload: w.label().to_owned(),
                fraction_of_footprint: overhead.fraction_of(scale.data_bytes),
                overhead,
            }
        })
        .collect();
    Ok(rows)
}

/// Renders the table.
pub fn table(rows: &[Table6Row]) -> Table {
    let mut t = Table::new(
        "Table 6: KLOC metadata memory increase",
        &[
            "workload",
            "member ptrs",
            "per-CPU lists",
            "knodes",
            "migrate list",
            "total",
            "% of footprint",
        ],
    );
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            bytes(r.overhead.member_pointers),
            bytes(r.overhead.percpu_lists),
            bytes(r.overhead.knodes),
            bytes(r.overhead.migrate_list),
            bytes(r.overhead.total()),
            pct(r.fraction_of_footprint),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_under_one_percent() {
        let rows = run(
            &Runner::auto(),
            &Scale::tiny(),
            &[WorkloadKind::RocksDb, WorkloadKind::Redis],
        )
        .unwrap();
        for r in &rows {
            assert!(
                r.overhead.total() > 0,
                "{}: no metadata measured",
                r.workload
            );
            assert!(
                r.fraction_of_footprint < 0.01,
                "{}: overhead {:.3}% exceeds the paper's <1% claim",
                r.workload,
                r.fraction_of_footprint * 100.0
            );
            assert!(
                r.overhead.member_pointers >= r.overhead.knodes,
                "member pointers should dominate knode structs"
            );
        }
        assert!(!table(&rows).is_empty());
    }
}
