//! Design-choice ablations the paper quantifies in prose.
//!
//! * **Per-CPU fast paths** (§4.3): "Per-CPU lists reduce the
//!   rbtree-cache and rbtree-slab accesses by 54 %".
//! * **KLOC-aware prefetching** (§7.3): "augmenting prefetchers with
//!   KLOCs improves RocksDB throughput by 1.26x" and prevents readahead
//!   pollution of fast memory.
//! * **Transparent huge pages** (§5): the paper *hypothesizes* that
//!   "KLOCs should provide higher performance gains with THP, although
//!   this hypothesis needs to be tested in future studies" — tested here.
//! * **Tracking granularity** (§4.4): the paper defers fine-grained
//!   (per-member) kernel object tracking to future work — implemented
//!   and compared against the baseline inode granularity here.

use kloc_core::KlocConfig;
use kloc_kernel::{KernelError, KernelParams};
use kloc_policy::{KlocPolicy, PolicyKind};
use kloc_workloads::{Scale, WorkloadKind};

use crate::engine::{Platform, RunConfig};
use crate::report::{f2, pct, Table};
use crate::runner::{Job, Runner};

/// Result of the per-CPU fast-path ablation.
#[derive(Debug, Clone)]
pub struct PercpuAblation {
    /// kmap tree traversals with per-CPU lists enabled.
    pub tree_accesses_with: u64,
    /// kmap tree traversals with per-CPU lists disabled.
    pub tree_accesses_without: u64,
    /// Fast-path hit ratio when enabled.
    pub hit_ratio: f64,
}

impl PercpuAblation {
    /// Fractional reduction in tree accesses (the paper's 54 %).
    pub fn reduction(&self) -> f64 {
        if self.tree_accesses_without == 0 {
            0.0
        } else {
            1.0 - self.tree_accesses_with as f64 / self.tree_accesses_without as f64
        }
    }
}

/// Runs the §4.3 ablation on RocksDB.
///
/// # Errors
/// Propagates kernel errors.
pub fn percpu(runner: &Runner, scale: &Scale) -> Result<PercpuAblation, KernelError> {
    let cfg = RunConfig::two_tier(WorkloadKind::RocksDb, PolicyKind::Kloc, scale.clone());
    let variant = |use_percpu: bool| {
        Job::with_policy(
            cfg.clone(),
            Box::new(move || {
                let kc = KlocConfig {
                    use_percpu,
                    ..KlocConfig::default()
                };
                Box::new(KlocPolicy::with_config(kc, true))
            }),
        )
    };
    let mut reports = runner.run_jobs(vec![variant(true), variant(false)])?;
    let without = reports.pop().expect("two variants");
    let with = reports.pop().expect("two variants");
    Ok(PercpuAblation {
        tree_accesses_with: with.kmap_tree_accesses.unwrap_or(0),
        tree_accesses_without: without.kmap_tree_accesses.unwrap_or(0),
        hit_ratio: with.percpu_hit_ratio.unwrap_or(0.0),
    })
}

/// Renders the per-CPU ablation.
pub fn percpu_table(a: &PercpuAblation) -> Table {
    let mut t = Table::new(
        "Ablation (4.3): per-CPU knode lists vs kmap-only",
        &["metric", "value"],
    );
    t.row(vec![
        "kmap tree accesses (with per-CPU lists)".into(),
        a.tree_accesses_with.to_string(),
    ]);
    t.row(vec![
        "kmap tree accesses (without)".into(),
        a.tree_accesses_without.to_string(),
    ]);
    t.row(vec!["reduction (paper: 54%)".into(), pct(a.reduction())]);
    t.row(vec!["fast-path hit ratio".into(), pct(a.hit_ratio)]);
    t
}

/// Result of the prefetch ablation.
#[derive(Debug, Clone)]
pub struct PrefetchAblation {
    /// Throughput with KLOC-aware readahead enabled.
    pub with_prefetch: f64,
    /// Throughput with readahead disabled (still KLOCs).
    pub without_prefetch: f64,
    /// Throughput of prefetching *without* the KLOC abstraction
    /// (Nimble++): readahead pollutes fast memory unchecked.
    pub non_kloc_prefetch: f64,
    /// Prefetched pages issued / later used.
    pub issued: u64,
    /// Useful prefetches.
    pub useful: u64,
}

impl PrefetchAblation {
    /// Speedup of prefetching under KLOCs vs no prefetching.
    pub fn speedup(&self) -> f64 {
        if self.without_prefetch <= 0.0 {
            0.0
        } else {
            self.with_prefetch / self.without_prefetch
        }
    }

    /// Speedup of KLOC-aware prefetching over prefetching without KLOCs
    /// (the paper's 1.26x RocksDB comparison, §7.3).
    pub fn kloc_vs_non_kloc(&self) -> f64 {
        if self.non_kloc_prefetch <= 0.0 {
            0.0
        } else {
            self.with_prefetch / self.non_kloc_prefetch
        }
    }
}

/// Runs the §7.3 prefetch ablation.
///
/// # Errors
/// Propagates kernel errors.
pub fn prefetch(
    runner: &Runner,
    scale: &Scale,
    workload: WorkloadKind,
) -> Result<PrefetchAblation, KernelError> {
    // Constrain the page cache to a quarter of the dataset so streaming
    // reads actually miss (the paper's testbeds page against a dataset
    // several times their fast memory; a cache that holds everything
    // never exercises the prefetcher).
    let budget = (scale.data_pages() / 4).max(64);
    let with_ra = KernelParams {
        page_cache_budget: budget,
        ..KernelParams::default()
    };
    let mut base = RunConfig::two_tier(workload, PolicyKind::Kloc, scale.clone());
    base.kernel_params = Some(with_ra);

    let no_ra = KernelParams {
        page_cache_budget: budget,
        readahead_max: 0,
        ..KernelParams::default()
    };
    let without_cfg = RunConfig {
        kernel_params: Some(no_ra),
        faults: None,
        budgets: Vec::new(),
        platform: Platform::default_two_tier(),
        ..base.clone()
    };

    // Prefetching without the KLOC abstraction: Nimble++ lets readahead
    // pollute fast memory.
    let mut non_kloc_cfg = base.clone();
    non_kloc_cfg.policy = PolicyKind::NimblePlusPlus;

    let mut reports = runner.run_all(vec![base, without_cfg, non_kloc_cfg])?;
    let non_kloc = reports.pop().expect("three runs");
    let without = reports.pop().expect("three runs");
    let with = reports.pop().expect("three runs");
    Ok(PrefetchAblation {
        with_prefetch: with.throughput(),
        without_prefetch: without.throughput(),
        non_kloc_prefetch: non_kloc.throughput(),
        issued: with.readahead_issued,
        useful: with.readahead_useful,
    })
}

/// Renders the prefetch ablation.
pub fn prefetch_table(a: &PrefetchAblation) -> Table {
    let mut t = Table::new("Ablation (7.3): KLOC-aware readahead", &["metric", "value"]);
    t.row(vec![
        "throughput, KLOCs + prefetch (ops/s)".into(),
        f2(a.with_prefetch),
    ]);
    t.row(vec![
        "throughput, KLOCs, no prefetch (ops/s)".into(),
        f2(a.without_prefetch),
    ]);
    t.row(vec![
        "throughput, prefetch without KLOCs (ops/s)".into(),
        f2(a.non_kloc_prefetch),
    ]);
    t.row(vec![
        "KLOC-aware vs non-KLOC prefetch (paper: 1.26x)".into(),
        f2(a.kloc_vs_non_kloc()),
    ]);
    t.row(vec!["prefetch gain under KLOCs".into(), f2(a.speedup())]);
    t.row(vec!["pages prefetched".into(), a.issued.to_string()]);
    t.row(vec!["prefetched pages used".into(), a.useful.to_string()]);
    t
}

/// Result of the THP hypothesis test (paper §5).
#[derive(Debug, Clone)]
pub struct ThpAblation {
    /// `(workload, policy, throughput without THP, with THP)`.
    pub rows: Vec<(String, String, f64, f64)>,
}

impl ThpAblation {
    /// KLOCs' margin over Nimble++ for `workload`, `(without, with)` THP.
    pub fn kloc_margin(&self, workload: &str) -> Option<(f64, f64)> {
        let find = |policy: &str| {
            self.rows
                .iter()
                .find(|(w, p, _, _)| w == workload && p == policy)
        };
        let kloc = find("KLOCs")?;
        let npp = find("Nimble++")?;
        Some((kloc.2 / npp.2, kloc.3 / npp.3))
    }
}

/// Runs the §5 THP hypothesis test: KLOCs and Nimble++ with application
/// memory backed by 4 KB pages vs transparent huge pages.
///
/// # Errors
/// Propagates kernel errors.
pub fn thp(
    runner: &Runner,
    scale: &Scale,
    workloads: &[WorkloadKind],
) -> Result<ThpAblation, KernelError> {
    const POLICIES: [PolicyKind; 2] = [PolicyKind::NimblePlusPlus, PolicyKind::Kloc];
    // Per (workload, policy): 4K then THP.
    let mut configs = Vec::with_capacity(workloads.len() * POLICIES.len() * 2);
    for &w in workloads {
        for policy in POLICIES {
            for thp_on in [false, true] {
                let params = KernelParams {
                    page_cache_budget: scale.page_cache_frames,
                    thp_app: thp_on,
                    ..KernelParams::default()
                };
                let mut cfg = RunConfig::two_tier(w, policy, scale.clone());
                cfg.kernel_params = Some(params);
                configs.push(cfg);
            }
        }
    }
    let reports = runner.run_all(configs)?;

    let mut rows = Vec::new();
    let mut pairs = reports.chunks(2);
    for &w in workloads {
        for policy in POLICIES {
            let pair = pairs.next().expect("one 4K/THP pair per cell");
            rows.push((
                w.label().to_owned(),
                policy.label().to_owned(),
                pair[0].throughput(),
                pair[1].throughput(),
            ));
        }
    }
    Ok(ThpAblation { rows })
}

/// Renders the THP ablation.
pub fn thp_table(a: &ThpAblation) -> Table {
    let mut t = Table::new(
        "Ablation (5): transparent huge pages for app memory (paper hypothesis)",
        &[
            "workload",
            "policy",
            "ops/s (4K)",
            "ops/s (THP)",
            "THP gain",
        ],
    );
    for (w, p, base, thp) in &a.rows {
        t.row(vec![
            w.clone(),
            p.clone(),
            f2(*base),
            f2(*thp),
            f2(if *base > 0.0 { thp / base } else { 0.0 }),
        ]);
    }
    t
}

/// Result of the tracking-granularity ablation (§4.4 future work).
#[derive(Debug, Clone)]
pub struct GranularityAblation {
    /// `(workload, throughput at inode granularity, at member granularity)`.
    pub rows: Vec<(String, f64, f64)>,
}

impl GranularityAblation {
    /// Mean speedup of member-granular over inode-granular tracking.
    pub fn mean_gain(&self) -> f64 {
        let gains: Vec<f64> = self
            .rows
            .iter()
            .filter(|(_, c, _)| *c > 0.0)
            .map(|(_, c, f)| f / c)
            .collect();
        if gains.is_empty() {
            0.0
        } else {
            gains.iter().sum::<f64>() / gains.len() as f64
        }
    }
}

/// Runs the §4.4 granularity ablation: the paper's baseline
/// inode-granularity KLOCs vs this repository's member-granular
/// extension.
///
/// # Errors
/// Propagates kernel errors.
pub fn granularity(
    runner: &Runner,
    scale: &Scale,
    workloads: &[WorkloadKind],
) -> Result<GranularityAblation, KernelError> {
    // Per workload: coarse (inode) then fine (member) granularity.
    let mut jobs = Vec::with_capacity(workloads.len() * 2);
    for &w in workloads {
        let cfg = RunConfig::two_tier(w, PolicyKind::Kloc, scale.clone());
        jobs.push(Job::with_policy(
            cfg.clone(),
            Box::new(|| Box::new(KlocPolicy::coarse())),
        ));
        jobs.push(Job::with_policy(
            cfg,
            Box::new(|| Box::new(KlocPolicy::new())),
        ));
    }
    let reports = runner.run_jobs(jobs)?;

    let rows = workloads
        .iter()
        .zip(reports.chunks(2))
        .map(|(&w, pair)| {
            (
                w.label().to_owned(),
                pair[0].throughput(),
                pair[1].throughput(),
            )
        })
        .collect();
    Ok(GranularityAblation { rows })
}

/// Renders the granularity ablation.
pub fn granularity_table(a: &GranularityAblation) -> Table {
    let mut t = Table::new(
        "Ablation (4.4): inode-granular (paper baseline) vs member-granular tracking",
        &[
            "workload",
            "inode-granular ops/s",
            "member-granular ops/s",
            "gain",
        ],
    );
    for (w, coarse, fine) in &a.rows {
        t.row(vec![
            w.clone(),
            f2(*coarse),
            f2(*fine),
            f2(if *coarse > 0.0 { fine / coarse } else { 0.0 }),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percpu_lists_cut_tree_accesses_substantially() {
        let a = percpu(&Runner::auto(), &Scale::tiny()).unwrap();
        assert!(
            a.reduction() > 0.4,
            "per-CPU lists should cut tree accesses ~54%, got {:.1}%",
            a.reduction() * 100.0
        );
        assert!(a.hit_ratio > 0.4);
        assert!(!percpu_table(&a).is_empty());
    }

    #[test]
    fn granularity_extension_does_not_regress() {
        let a = granularity(&Runner::auto(), &Scale::tiny(), &[WorkloadKind::RocksDb]).unwrap();
        assert_eq!(a.rows.len(), 1);
        assert!(
            a.mean_gain() > 0.9,
            "member-granular tracking should not badly regress, got {:.2}",
            a.mean_gain()
        );
        assert!(!granularity_table(&a).is_empty());
    }

    #[test]
    fn thp_runs_and_reports() {
        let a = thp(&Runner::auto(), &Scale::tiny(), &[WorkloadKind::Redis]).unwrap();
        assert_eq!(a.rows.len(), 2);
        let (without, with) = a.kloc_margin("Redis").expect("margin");
        // The paper's hypothesis: KLOCs' advantage holds (or grows) with
        // THP. Allow small noise at tiny scale.
        assert!(
            with >= without * 0.9,
            "KLOCs margin under THP {with:.2} vs without {without:.2}"
        );
        assert!(!thp_table(&a).is_empty());
    }

    #[test]
    fn prefetch_helps_sequential_workloads() {
        let a = prefetch(&Runner::auto(), &Scale::tiny(), WorkloadKind::Spark).unwrap();
        assert!(a.issued > 0, "prefetch must fire for streaming reads");
        assert!(
            a.speedup() > 0.95,
            "prefetch should not hurt, got {:.2}x",
            a.speedup()
        );
        assert!(!prefetch_table(&a).is_empty());
    }
}
