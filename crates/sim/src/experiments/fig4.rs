//! Fig. 4 — two-tier platform speedups.
//!
//! For each workload, every strategy's throughput normalized to
//! *All Slow Mem*. The paper's headline shape: `Naive < Nimble <
//! Nimble++ <= KLOCs-nomigration < KLOCs <= All Fast Mem`, with KLOCs up
//! to 2.7x over Nimble (Redis) and Cassandra nearly insensitive.

use kloc_kernel::KernelError;
use kloc_policy::PolicyKind;
use kloc_workloads::{Scale, WorkloadKind};

use crate::engine::{Platform, RunConfig, RunReport};
use crate::report::{f2, Table};
use crate::runner::Runner;

/// Speedups for one workload.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Workload label.
    pub workload: String,
    /// `(policy label, speedup vs All-Slow)` in Fig. 4 bar order.
    pub speedups: Vec<(String, f64)>,
    /// The All-Slow baseline run.
    pub baseline: RunReport,
    /// The per-policy runs (same order as `speedups`).
    pub runs: Vec<RunReport>,
}

impl Fig4Row {
    /// Speedup of a given policy, if present.
    pub fn speedup(&self, policy: PolicyKind) -> Option<f64> {
        self.speedups
            .iter()
            .find(|(l, _)| l == policy.label())
            .map(|(_, s)| *s)
    }
}

/// Runs Fig. 4 for the given workloads on a two-tier platform.
///
/// All `(workload, policy)` runs — the All-Slow baselines included — are
/// independent, so the whole figure is dispatched as one batch through
/// `runner`.
///
/// # Errors
/// Propagates kernel errors.
pub fn run(
    runner: &Runner,
    scale: &Scale,
    platform: Platform,
    workloads: &[WorkloadKind],
) -> Result<Vec<Fig4Row>, KernelError> {
    // Per workload: one All-Slow baseline followed by every policy bar.
    let chunk = 1 + PolicyKind::TWO_TIER.len();
    let mut configs = Vec::with_capacity(workloads.len() * chunk);
    for &w in workloads {
        for policy in std::iter::once(PolicyKind::AllSlow).chain(PolicyKind::TWO_TIER) {
            configs.push(RunConfig {
                workload: w,
                policy,
                scale: scale.clone(),
                platform,
                kernel_params: None,
                faults: None,
                budgets: Vec::new(),
            });
        }
    }
    let reports = runner.run_all(configs)?;

    let mut rows = Vec::new();
    for (i, &w) in workloads.iter().enumerate() {
        let group = &reports[i * chunk..(i + 1) * chunk];
        let baseline = group[0].clone();
        let runs: Vec<RunReport> = group[1..].to_vec();
        let speedups = PolicyKind::TWO_TIER
            .iter()
            .zip(&runs)
            .map(|(p, r)| (p.label().to_owned(), r.speedup_over(&baseline)))
            .collect();
        rows.push(Fig4Row {
            workload: w.label().to_owned(),
            speedups,
            baseline,
            runs,
        });
    }
    Ok(rows)
}

/// Renders the figure as a table (rows = workloads, columns = policies).
pub fn table(rows: &[Fig4Row]) -> Table {
    let mut header = vec!["workload"];
    let labels: Vec<&str> = PolicyKind::TWO_TIER.iter().map(|p| p.label()).collect();
    header.extend(labels.iter());
    let mut t = Table::new("Fig 4: two-tier speedup vs All Slow Mem", &header);
    for r in rows {
        let mut cells = vec![r.workload.clone()];
        cells.extend(r.speedups.iter().map(|(_, s)| f2(*s)));
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper_shape() {
        let platform = Platform::TwoTier {
            fast_bytes: 512 << 10,
            bw_ratio: 8,
        };
        let rows = run(
            &Runner::auto(),
            &Scale::tiny(),
            platform,
            &[WorkloadKind::RocksDb, WorkloadKind::Redis],
        )
        .unwrap();
        for r in &rows {
            let get = |p| r.speedup(p).unwrap();
            let kloc = get(PolicyKind::Kloc);
            let nimble = get(PolicyKind::Nimble);
            let allfast = get(PolicyKind::AllFast);
            assert!(
                kloc > nimble,
                "{}: KLOCs ({kloc:.2}) must beat Nimble ({nimble:.2})",
                r.workload
            );
            assert!(
                kloc > 1.0,
                "{}: KLOCs must beat All-Slow, got {kloc:.2}",
                r.workload
            );
            assert!(
                allfast >= kloc * 0.9,
                "{}: All-Fast ({allfast:.2}) should be near-best vs KLOCs ({kloc:.2})",
                r.workload
            );
        }
        let t = table(&rows);
        assert_eq!(t.len(), rows.len());
    }
}
