//! Fig. 6 — sensitivity to fast-memory capacity and bandwidth ratio.
//!
//! The paper sweeps fast-tier capacity {4, 8, 32} GB x bandwidth
//! differential {1:8, 1:4, 1:2} and plots, per strategy, the mean
//! speedup over All-Slow across workloads with min/max whiskers. The
//! shapes to reproduce: KLOCs win everywhere; gains grow with the
//! bandwidth differential and shrink as fast capacity grows (everything
//! converges when the working set fits).

use kloc_kernel::KernelError;
use kloc_policy::PolicyKind;
use kloc_workloads::{Scale, WorkloadKind};

use crate::engine::{Platform, RunConfig};
use crate::report::{f2, Table};
use crate::runner::Runner;

/// Capacities swept (scaled analogues of 4/8/32 GB).
pub const CAPACITIES: [u64; 3] = [4 << 20, 8 << 20, 32 << 20];
/// Bandwidth ratios swept (1:8, 1:4, 1:2).
pub const RATIOS: [u64; 3] = [8, 4, 2];
/// Strategies plotted.
pub const POLICIES: [PolicyKind; 4] = [
    PolicyKind::Naive,
    PolicyKind::Nimble,
    PolicyKind::NimblePlusPlus,
    PolicyKind::Kloc,
];

/// Mean/min/max speedup of one policy at one configuration.
#[derive(Debug, Clone)]
pub struct Fig6Cell {
    /// Fast capacity (bytes).
    pub fast_bytes: u64,
    /// Bandwidth ratio.
    pub bw_ratio: u64,
    /// Policy label.
    pub policy: String,
    /// Mean speedup across workloads.
    pub mean: f64,
    /// Minimum across workloads.
    pub min: f64,
    /// Maximum across workloads.
    pub max: f64,
}

/// Runs the sweep.
///
/// The full capacity x ratio x policy x workload cross product — the
/// All-Slow baselines included — is dispatched as one batch through
/// `runner`; with N workloads each (capacity, ratio) point contributes
/// `N * (1 + POLICIES)` independent runs.
///
/// # Errors
/// Propagates kernel errors.
pub fn run(
    runner: &Runner,
    scale: &Scale,
    workloads: &[WorkloadKind],
    capacities: &[u64],
    ratios: &[u64],
) -> Result<Vec<Fig6Cell>, KernelError> {
    // Per (capacity, ratio): per-workload baselines, then per policy the
    // per-workload runs.
    let w_n = workloads.len();
    let chunk = w_n * (1 + POLICIES.len());
    let mut configs = Vec::with_capacity(capacities.len() * ratios.len() * chunk);
    for &cap in capacities {
        for &ratio in ratios {
            let platform = Platform::TwoTier {
                fast_bytes: cap,
                bw_ratio: ratio,
            };
            for policy in std::iter::once(PolicyKind::AllSlow).chain(POLICIES) {
                for &w in workloads {
                    configs.push(RunConfig {
                        workload: w,
                        policy,
                        scale: scale.clone(),
                        platform,
                        kernel_params: None,
                        faults: None,
                        budgets: Vec::new(),
                    });
                }
            }
        }
    }
    let reports = runner.run_all(configs)?;

    let mut cells = Vec::new();
    let mut groups = reports.chunks(chunk);
    for &cap in capacities {
        for &ratio in ratios {
            let group = groups.next().expect("one group per platform point");
            let baselines = &group[..w_n];
            for (p_i, policy) in POLICIES.iter().enumerate() {
                let runs = &group[(1 + p_i) * w_n..(2 + p_i) * w_n];
                let speedups: Vec<f64> = runs
                    .iter()
                    .zip(baselines)
                    .map(|(r, b)| r.speedup_over(b))
                    .collect();
                let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
                let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = speedups.iter().cloned().fold(0.0, f64::max);
                cells.push(Fig6Cell {
                    fast_bytes: cap,
                    bw_ratio: ratio,
                    policy: policy.label().to_owned(),
                    mean,
                    min,
                    max,
                });
            }
        }
    }
    Ok(cells)
}

/// Renders the sweep.
pub fn table(cells: &[Fig6Cell]) -> Table {
    let mut t = Table::new(
        "Fig 6: speedup vs All Slow across capacity x bandwidth (mean [min,max] over workloads)",
        &["fast mem", "bw ratio", "policy", "mean", "min", "max"],
    );
    for c in cells {
        t.row(vec![
            format!("{}MB", c.fast_bytes >> 20),
            format!("1:{}", c.bw_ratio),
            c.policy.clone(),
            f2(c.mean),
            f2(c.min),
            f2(c.max),
        ]);
    }
    t
}

/// Looks up a cell.
pub fn cell(
    cells: &[Fig6Cell],
    fast_bytes: u64,
    bw_ratio: u64,
    policy: PolicyKind,
) -> Option<&Fig6Cell> {
    cells.iter().find(|c| {
        c.fast_bytes == fast_bytes && c.bw_ratio == bw_ratio && c.policy == policy.label()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kloc_gains_grow_with_bandwidth_differential() {
        // Small sweep at tiny scale: two ratios, one capacity.
        let cells = run(
            &Runner::auto(),
            &Scale::tiny(),
            &[WorkloadKind::RocksDb],
            &[512 << 10],
            &[8, 2],
        )
        .unwrap();
        let k8 = cell(&cells, 512 << 10, 8, PolicyKind::Kloc).unwrap();
        let k2 = cell(&cells, 512 << 10, 2, PolicyKind::Kloc).unwrap();
        assert!(
            k8.mean > k2.mean,
            "1:8 speedup {:.2} should exceed 1:2 speedup {:.2}",
            k8.mean,
            k2.mean
        );
        // KLOC beats Nimble at the high differential.
        let n8 = cell(&cells, 512 << 10, 8, PolicyKind::Nimble).unwrap();
        assert!(k8.mean > n8.mean);
        assert!(!table(&cells).is_empty());
    }

    #[test]
    fn gains_shrink_as_capacity_grows() {
        let cells = run(
            &Runner::auto(),
            &Scale::tiny(),
            &[WorkloadKind::RocksDb],
            &[256 << 10, 8 << 20],
            &[8],
        )
        .unwrap();
        let tight = cell(&cells, 256 << 10, 8, PolicyKind::Kloc).unwrap();
        let roomy = cell(&cells, 8 << 20, 8, PolicyKind::Kloc).unwrap();
        // With an 8 MB fast tier a tiny-scale working set fits entirely:
        // every policy converges, so the *relative advantage* shrinks.
        let tight_naive = cell(&cells, 256 << 10, 8, PolicyKind::Naive).unwrap();
        let roomy_naive = cell(&cells, 8 << 20, 8, PolicyKind::Naive).unwrap();
        let tight_gap = tight.mean / tight_naive.mean;
        let roomy_gap = roomy.mean / roomy_naive.mean;
        assert!(
            tight_gap >= roomy_gap * 0.95,
            "advantage should not grow with capacity: tight {tight_gap:.2} vs roomy {roomy_gap:.2}"
        );
    }
}
