//! Fig. 5 — Optane Memory Mode speedups (5a), sources of improvement
//! (5b), and per-object-class sensitivity (5c).

use std::collections::BTreeSet;

use kloc_core::KlocConfig;
use kloc_kernel::{KernelError, KernelObjectType};
use kloc_mem::PageKind;
use kloc_policy::{AutoNuma, KlocPolicy, Policy, PolicyKind};
use kloc_workloads::{Scale, WorkloadKind};

use crate::engine::{OptaneScenario, Platform, RunConfig, RunReport};
use crate::report::{f2, Table};
use crate::runner::{Job, Runner};

// ---------------------------------------------------------------------
// Fig. 5a — Optane Memory Mode
// ---------------------------------------------------------------------

/// The strategies compared in Fig. 5a.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptaneStrategy {
    /// Vanilla AutoNUMA (app pages only).
    AutoNuma,
    /// Nimble configured for the platform (app pages, parallel copy).
    Nimble,
    /// AutoNUMA + KLOC kernel-object migration.
    Kloc,
    /// Ideal: all accesses local, no interference.
    AllLocal,
}

impl OptaneStrategy {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            OptaneStrategy::AutoNuma => "AutoNUMA",
            OptaneStrategy::Nimble => "Nimble",
            OptaneStrategy::Kloc => "KLOCs",
            OptaneStrategy::AllLocal => "All Local (ideal)",
        }
    }

    /// All strategies in bar order.
    pub const ALL: [OptaneStrategy; 4] = [
        OptaneStrategy::AutoNuma,
        OptaneStrategy::Nimble,
        OptaneStrategy::Kloc,
        OptaneStrategy::AllLocal,
    ];
}

/// Fig. 5a speedups for one workload.
#[derive(Debug, Clone)]
pub struct Fig5aRow {
    /// Workload label.
    pub workload: String,
    /// `(strategy label, speedup vs all-remote)`.
    pub speedups: Vec<(String, f64)>,
}

impl Fig5aRow {
    /// Speedup of one strategy.
    pub fn speedup(&self, s: OptaneStrategy) -> Option<f64> {
        self.speedups
            .iter()
            .find(|(l, _)| l == s.label())
            .map(|(_, v)| *v)
    }
}

fn optane_config(w: WorkloadKind, scale: &Scale, scenario: OptaneScenario) -> RunConfig {
    RunConfig {
        workload: w,
        policy: PolicyKind::AutoNuma, // placeholder; run_with overrides
        scale: scale.clone(),
        platform: Platform::Optane {
            l4_bytes: 4 << 20,
            scenario,
        },
        kernel_params: None,
        faults: None,
        budgets: Vec::new(),
    }
}

/// Runs Fig. 5a for the given workloads.
///
/// # Errors
/// Propagates kernel errors.
pub fn fig5a(
    runner: &Runner,
    scale: &Scale,
    workloads: &[WorkloadKind],
) -> Result<Vec<Fig5aRow>, KernelError> {
    let interfered = OptaneScenario::Interfered { contention: 1.8 };
    // Per workload: the all-remote baseline, then the four strategy bars.
    let chunk = 1 + OptaneStrategy::ALL.len();
    let mut jobs = Vec::with_capacity(workloads.len() * chunk);
    for &w in workloads {
        // Worst-case baseline: all accesses remote.
        jobs.push(Job::with_policy(
            optane_config(w, scale, OptaneScenario::AllRemote),
            Box::new(|| Box::new(AutoNuma::new())),
        ));
        for strat in OptaneStrategy::ALL {
            let scenario = match strat {
                OptaneStrategy::AllLocal => OptaneScenario::AllLocal,
                _ => interfered,
            };
            let factory: Box<dyn Fn() -> Box<dyn Policy> + Send + Sync> = match strat {
                OptaneStrategy::AutoNuma => Box::new(|| Box::new(AutoNuma::new())),
                OptaneStrategy::Nimble => Box::new(|| Box::new(AutoNuma::nimble_flavor())),
                // The All-Local bar uses the same policy stack as the
                // KLOC bar, but with no interference and no task
                // movement: pure upper bound.
                OptaneStrategy::Kloc | OptaneStrategy::AllLocal => {
                    Box::new(|| Box::new(kloc_policy::AutoNumaKloc::new()))
                }
            };
            jobs.push(Job::with_policy(optane_config(w, scale, scenario), factory));
        }
    }
    let reports = runner.run_jobs(jobs)?;

    let mut rows = Vec::new();
    for (i, &w) in workloads.iter().enumerate() {
        let group = &reports[i * chunk..(i + 1) * chunk];
        let baseline = &group[0];
        let speedups = OptaneStrategy::ALL
            .iter()
            .zip(&group[1..])
            .map(|(strat, r)| (strat.label().to_owned(), r.speedup_over(baseline)))
            .collect();
        rows.push(Fig5aRow {
            workload: w.label().to_owned(),
            speedups,
        });
    }
    Ok(rows)
}

/// Renders Fig. 5a.
pub fn fig5a_table(rows: &[Fig5aRow]) -> Table {
    let mut header = vec!["workload"];
    header.extend(OptaneStrategy::ALL.iter().map(|s| s.label()));
    let mut t = Table::new("Fig 5a: Optane Memory Mode speedup vs all-remote", &header);
    for r in rows {
        let mut cells = vec![r.workload.clone()];
        cells.extend(r.speedups.iter().map(|(_, s)| f2(*s)));
        t.row(cells);
    }
    t
}

// ---------------------------------------------------------------------
// Fig. 5b — sources of improvement (RocksDB)
// ---------------------------------------------------------------------

/// One policy's slow-memory behaviour for RocksDB.
#[derive(Debug, Clone)]
pub struct Fig5bRow {
    /// Policy label.
    pub policy: String,
    /// Page-cache pages allocated directly into slow memory.
    pub slow_cache_allocs: u64,
    /// Slab-class pages allocated directly into slow memory.
    pub slow_slab_allocs: u64,
    /// Pages migrated fast -> slow (demotions).
    pub demotions: u64,
    /// Pages migrated slow -> fast (promotions).
    pub promotions: u64,
}

/// Runs Fig. 5b (RocksDB on the two-tier platform).
///
/// # Errors
/// Propagates kernel errors.
pub fn fig5b(
    runner: &Runner,
    scale: &Scale,
    platform: Platform,
) -> Result<Vec<Fig5bRow>, KernelError> {
    let policies = [
        PolicyKind::Naive,
        PolicyKind::Nimble,
        PolicyKind::NimblePlusPlus,
        PolicyKind::Kloc,
    ];
    let configs = policies
        .iter()
        .map(|&p| RunConfig {
            workload: WorkloadKind::RocksDb,
            policy: p,
            scale: scale.clone(),
            platform,
            kernel_params: None,
            faults: None,
            budgets: Vec::new(),
        })
        .collect();
    let reports = runner.run_all(configs)?;
    Ok(reports.iter().map(fig5b_row).collect())
}

/// Extracts a Fig. 5b row from a run report.
pub fn fig5b_row(r: &RunReport) -> Fig5bRow {
    let slow = &r.mem.tiers[1];
    let get = |k: PageKind| slow.allocated_by_kind.get(&k).copied().unwrap_or(0);
    Fig5bRow {
        policy: r.policy.clone(),
        slow_cache_allocs: get(PageKind::PageCache),
        slow_slab_allocs: get(PageKind::Slab) + get(PageKind::KernelVma),
        demotions: r.migrations.demotions,
        promotions: r.migrations.promotions,
    }
}

/// Renders Fig. 5b.
pub fn fig5b_table(rows: &[Fig5bRow]) -> Table {
    let mut t = Table::new(
        "Fig 5b: RocksDB slow-memory allocations and migrations",
        &[
            "policy",
            "slow cache allocs",
            "slow slab allocs",
            "demotions",
            "promotions",
        ],
    );
    for r in rows {
        t.row(vec![
            r.policy.clone(),
            r.slow_cache_allocs.to_string(),
            r.slow_slab_allocs.to_string(),
            r.demotions.to_string(),
            r.promotions.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Fig. 5c — per-object-class sensitivity
// ---------------------------------------------------------------------

/// The cumulative inclusion stages of Fig. 5c: start by tiering only
/// application pages (all kernel objects pinned fast), then hand object
/// classes to the KLOC abstraction one group at a time.
pub fn inclusion_stages() -> Vec<(&'static str, Vec<KernelObjectType>)> {
    vec![
        ("app-only", vec![]),
        (
            "+page-cache",
            vec![KernelObjectType::PageCache, KernelObjectType::RadixNode],
        ),
        (
            "+journal",
            vec![
                KernelObjectType::JournalHead,
                KernelObjectType::JournalBlock,
            ],
        ),
        (
            "+fs-slab",
            vec![
                KernelObjectType::Inode,
                KernelObjectType::Dentry,
                KernelObjectType::Extent,
                KernelObjectType::FileHandle,
                KernelObjectType::DirBuffer,
            ],
        ),
        (
            "+socket-buffers",
            vec![
                KernelObjectType::Sock,
                KernelObjectType::SkBuff,
                KernelObjectType::SkBuffData,
                KernelObjectType::RxBuf,
            ],
        ),
        (
            "+block-io",
            vec![KernelObjectType::Bio, KernelObjectType::BlkMqRequest],
        ),
    ]
}

/// One workload's sensitivity series.
#[derive(Debug, Clone)]
pub struct Fig5cRow {
    /// Workload label.
    pub workload: String,
    /// `(stage label, throughput normalized to the app-only stage)`.
    pub series: Vec<(String, f64)>,
}

/// Runs Fig. 5c for the given workloads.
///
/// # Errors
/// Propagates kernel errors.
pub fn fig5c(
    runner: &Runner,
    scale: &Scale,
    platform: Platform,
    workloads: &[WorkloadKind],
) -> Result<Vec<Fig5cRow>, KernelError> {
    let stages = inclusion_stages();
    // Per workload, one job per cumulative inclusion stage.
    let mut jobs = Vec::with_capacity(workloads.len() * stages.len());
    for &w in workloads {
        let mut included: BTreeSet<KernelObjectType> = BTreeSet::new();
        for (_, group) in &stages {
            included.extend(group.iter().copied());
            let cfg = KlocConfig {
                included: included.clone(),
                ..KlocConfig::default()
            };
            jobs.push(Job::with_policy(
                RunConfig {
                    workload: w,
                    policy: PolicyKind::Kloc,
                    scale: scale.clone(),
                    platform,
                    kernel_params: None,
                    faults: None,
                    budgets: Vec::new(),
                },
                Box::new(move || Box::new(KlocPolicy::with_config(cfg.clone(), true))),
            ));
        }
    }
    let reports = runner.run_jobs(jobs)?;

    let mut rows = Vec::new();
    for (i, &w) in workloads.iter().enumerate() {
        let group = &reports[i * stages.len()..(i + 1) * stages.len()];
        let base = group[0].throughput();
        let series = stages
            .iter()
            .zip(group)
            .map(|((label, _), r)| ((*label).to_owned(), r.throughput() / base))
            .collect();
        rows.push(Fig5cRow {
            workload: w.label().to_owned(),
            series,
        });
    }
    Ok(rows)
}

/// Renders Fig. 5c.
pub fn fig5c_table(rows: &[Fig5cRow]) -> Table {
    let stages = inclusion_stages();
    let mut header = vec!["workload"];
    header.extend(stages.iter().map(|(l, _)| *l));
    let mut t = Table::new(
        "Fig 5c: throughput as object classes join KLOCs (normalized to app-only)",
        &header,
    );
    for r in rows {
        let mut cells = vec![r.workload.clone()];
        cells.extend(r.series.iter().map(|(_, v)| f2(*v)));
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5a_kloc_beats_autonuma_and_ideal_bounds_it() {
        let rows = fig5a(&Runner::auto(), &Scale::tiny(), &[WorkloadKind::Redis]).unwrap();
        let r = &rows[0];
        let kloc = r.speedup(OptaneStrategy::Kloc).unwrap();
        let auto = r.speedup(OptaneStrategy::AutoNuma).unwrap();
        let ideal = r.speedup(OptaneStrategy::AllLocal).unwrap();
        assert!(kloc > auto, "KLOCs {kloc:.2} vs AutoNUMA {auto:.2}");
        assert!(
            ideal >= kloc * 0.95,
            "ideal {ideal:.2} bounds KLOCs {kloc:.2}"
        );
        assert!(auto >= 0.9, "AutoNUMA must beat the all-remote baseline");
        assert!(!fig5a_table(&rows).is_empty());
    }

    #[test]
    fn fig5b_kloc_allocates_less_in_slow_memory_than_nimble() {
        let platform = Platform::TwoTier {
            fast_bytes: 512 << 10,
            bw_ratio: 8,
        };
        let rows = fig5b(&Runner::auto(), &Scale::tiny(), platform).unwrap();
        let by = |name: &str| rows.iter().find(|r| r.policy == name).unwrap().clone();
        let kloc = by("KLOCs");
        let nimble = by("Nimble");
        assert!(
            kloc.slow_cache_allocs < nimble.slow_cache_allocs,
            "KLOCs slow cache allocs {} vs Nimble {}",
            kloc.slow_cache_allocs,
            nimble.slow_cache_allocs
        );
        assert!(kloc.demotions > 0, "KLOCs must demote");
        assert!(!fig5b_table(&rows).is_empty());
    }

    #[test]
    fn fig5c_stages_are_cumulative_and_cover_all_types() {
        let stages = inclusion_stages();
        let mut all: BTreeSet<KernelObjectType> = BTreeSet::new();
        for (_, g) in &stages {
            for t in g {
                assert!(all.insert(*t), "{t} listed twice");
            }
        }
        assert_eq!(all.len(), KernelObjectType::ALL.len());
    }
}
