//! Fig. 2 — motivation study.
//!
//! * **2a**: percentage of total memory footprint per kernel-object
//!   category vs application pages (raw page counts on top of each bar).
//! * **2b**: OS vs application share of cumulative page allocations at
//!   Small and Large scale.
//! * **2c**: percentage of memory references to kernel objects.
//! * **2d**: mean lifetimes of application pages vs slab objects vs
//!   page-cache pages (log scale in the paper).
//!
//! All collected from instrumented runs with everything placed in fast
//! memory (placement-independent characterization, like the paper's
//! VTune/perf measurements).

use kloc_kernel::KernelError;
use kloc_mem::PageKind;
use kloc_policy::PolicyKind;
use kloc_workloads::{Scale, WorkloadKind};

use crate::engine::{Platform, RunConfig, RunReport};
use crate::report::{pct, Table};
use crate::runner::Runner;

/// Runs the characterization for every workload at `scale`.
///
/// # Errors
/// Propagates kernel errors.
pub fn run_all(runner: &Runner, scale: &Scale) -> Result<Vec<RunReport>, KernelError> {
    // Run under realistic memory pressure: the page cache holds only a
    // third of the dataset, so cache pages are reclaimed and their
    // lifetimes (Fig. 2d) reflect churn, as on the paper's testbeds.
    let params = kloc_kernel::KernelParams {
        page_cache_budget: (scale.data_pages() / 3).max(128),
        ..kloc_kernel::KernelParams::default()
    };
    let configs = WorkloadKind::ALL
        .iter()
        .map(|&w| RunConfig {
            workload: w,
            policy: PolicyKind::AllFast,
            scale: scale.clone(),
            platform: Platform::default_two_tier(),
            kernel_params: Some(params.clone()),
            faults: None,
            budgets: Vec::new(),
        })
        .collect();
    runner.run_all(configs)
}

/// One bar of Fig. 2a.
#[derive(Debug, Clone)]
pub struct Fig2aRow {
    /// Workload label.
    pub workload: String,
    /// Fraction of cumulative footprint that is application pages.
    pub app: f64,
    /// Fraction that is page-cache pages.
    pub page_cache: f64,
    /// Fraction that is journal objects.
    pub journal: f64,
    /// Fraction that is other FS slab objects.
    pub fs_slab: f64,
    /// Fraction that is network objects.
    pub network: f64,
    /// Total pages allocated (the raw count atop each bar), in pages.
    pub total_pages: u64,
}

/// Computes Fig. 2a rows from characterization runs.
pub fn fig2a(reports: &[RunReport]) -> Vec<Fig2aRow> {
    use kloc_kernel::obj::ObjectCategory;
    reports
        .iter()
        .map(|r| {
            let by_cat = r.kernel.footprint_by_category();
            let get = |c: ObjectCategory| by_cat.get(&c).copied().unwrap_or(0) as f64;
            let app = r.kernel.app_pages_allocated as f64;
            let total = app + r.kernel.kernel_footprint_pages() as f64;
            let total = total.max(1.0);
            Fig2aRow {
                workload: r.workload.clone(),
                app: app / total,
                page_cache: get(ObjectCategory::PageCache) / total,
                journal: get(ObjectCategory::Journal) / total,
                fs_slab: get(ObjectCategory::FsSlab) / total,
                network: get(ObjectCategory::Network) / total,
                total_pages: total as u64,
            }
        })
        .collect()
}

/// Renders Fig. 2a as a table.
pub fn fig2a_table(rows: &[Fig2aRow]) -> Table {
    let mut t = Table::new(
        "Fig 2a: footprint breakdown (app vs kernel object categories)",
        &[
            "workload",
            "app",
            "page-cache",
            "journal",
            "fs-slab",
            "network",
            "total pages",
        ],
    );
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            pct(r.app),
            pct(r.page_cache),
            pct(r.journal),
            pct(r.fs_slab),
            pct(r.network),
            r.total_pages.to_string(),
        ]);
    }
    t
}

/// Detailed per-object-type footprint (the full Table 1 inventory, as a
/// companion to Fig. 2a's coarse categories).
pub fn fig2a_detailed_table(reports: &[RunReport]) -> Table {
    use kloc_kernel::KernelObjectType;
    let mut header = vec!["object type".to_owned()];
    header.extend(reports.iter().map(|r| r.workload.clone()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Fig 2a (detail): cumulative page-equivalents per kernel object type",
        &header_refs,
    );
    for ty in KernelObjectType::ALL {
        let mut cells = vec![ty.to_string()];
        cells.extend(
            reports
                .iter()
                .map(|r| r.kernel.ty(ty).footprint_pages().to_string()),
        );
        t.row(cells);
    }
    let mut app = vec!["(app pages)".to_owned()];
    app.extend(
        reports
            .iter()
            .map(|r| r.kernel.app_pages_allocated.to_string()),
    );
    t.row(app);
    t
}

/// One row of Fig. 2b: OS allocation share at two scales.
#[derive(Debug, Clone)]
pub struct Fig2bRow {
    /// Workload label.
    pub workload: String,
    /// Kernel share of allocations, Small inputs.
    pub os_small: f64,
    /// Kernel share of allocations, Large inputs.
    pub os_large: f64,
}

/// Computes Fig. 2b from Small- and Large-scale characterization runs
/// (matched by position).
pub fn fig2b(small: &[RunReport], large: &[RunReport]) -> Vec<Fig2bRow> {
    small
        .iter()
        .zip(large)
        .map(|(s, l)| Fig2bRow {
            workload: l.workload.clone(),
            os_small: s.kernel.kernel_alloc_fraction(),
            os_large: l.kernel.kernel_alloc_fraction(),
        })
        .collect()
}

/// Renders Fig. 2b.
pub fn fig2b_table(rows: &[Fig2bRow]) -> Table {
    let mut t = Table::new(
        "Fig 2b: OS share of page allocations (Small vs Large inputs)",
        &["workload", "OS % (Small)", "OS % (Large)"],
    );
    for r in rows {
        t.row(vec![r.workload.clone(), pct(r.os_small), pct(r.os_large)]);
    }
    t
}

/// One row of Fig. 2c: share of memory references to kernel objects.
#[derive(Debug, Clone)]
pub struct Fig2cRow {
    /// Workload label.
    pub workload: String,
    /// Fraction of references to kernel pages.
    pub kernel_refs: f64,
}

/// Computes Fig. 2c.
pub fn fig2c(reports: &[RunReport]) -> Vec<Fig2cRow> {
    reports
        .iter()
        .map(|r| Fig2cRow {
            workload: r.workload.clone(),
            kernel_refs: r.mem.kernel_access_fraction(),
        })
        .collect()
}

/// Renders Fig. 2c.
pub fn fig2c_table(rows: &[Fig2cRow]) -> Table {
    let mut t = Table::new(
        "Fig 2c: memory references to kernel objects",
        &["workload", "kernel refs"],
    );
    for r in rows {
        t.row(vec![r.workload.clone(), pct(r.kernel_refs)]);
    }
    t
}

/// One row of Fig. 2d: mean lifetimes (microseconds).
#[derive(Debug, Clone)]
pub struct Fig2dRow {
    /// Workload label.
    pub workload: String,
    /// Mean application page lifetime (us).
    pub app_us: u64,
    /// Mean slab (+ kvma) object-page lifetime (us).
    pub slab_us: u64,
    /// Mean page-cache page lifetime (us).
    pub cache_us: u64,
}

/// Computes Fig. 2d.
pub fn fig2d(reports: &[RunReport]) -> Vec<Fig2dRow> {
    reports
        .iter()
        .map(|r| {
            let life = |k: PageKind| r.mem.mean_lifetime(k).as_micros();
            Fig2dRow {
                workload: r.workload.clone(),
                // App pages live for the whole run; their age at the end
                // of measurement is the observed lifetime.
                app_us: life(PageKind::AppData).max(r.app_page_age.as_micros()),
                slab_us: life(PageKind::Slab).max(life(PageKind::KernelVma)),
                cache_us: life(PageKind::PageCache),
            }
        })
        .collect()
}

/// Renders Fig. 2d.
pub fn fig2d_table(rows: &[Fig2dRow]) -> Table {
    let mut t = Table::new(
        "Fig 2d: mean page lifetimes (us; paper plots log scale)",
        &["workload", "app pages", "slab pages", "page-cache pages"],
    );
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            r.app_us.to_string(),
            r.slab_us.to_string(),
            r.cache_us.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motivation_shapes_hold_at_tiny_scale() {
        let reports = run_all(&Runner::auto(), &Scale::tiny()).unwrap();
        assert_eq!(reports.len(), WorkloadKind::ALL.len());

        // Fig 2a: kernel objects are a significant share everywhere.
        let rows = fig2a(&reports);
        for r in &rows {
            assert!(
                r.app < 0.9,
                "{}: kernel objects must be prevalent (app {:.2})",
                r.workload,
                r.app
            );
            let sum = r.app + r.page_cache + r.journal + r.fs_slab + r.network;
            assert!((sum - 1.0).abs() < 0.02, "shares must sum to 1, got {sum}");
        }
        // Redis has a visible network share; RocksDB is page-cache heavy.
        let redis = rows.iter().find(|r| r.workload == "Redis").unwrap();
        assert!(
            redis.network > 0.02,
            "Redis network share {:.3}",
            redis.network
        );
        let rocks = rows.iter().find(|r| r.workload == "RocksDB").unwrap();
        assert!(
            rocks.page_cache > rocks.network,
            "RocksDB should be cache-dominated"
        );

        // Fig 2c: Filebench is the most kernel-reference-heavy.
        let c = fig2c(&reports);
        let fb = c.iter().find(|r| r.workload == "Filebench").unwrap();
        for other in &c {
            assert!(fb.kernel_refs >= other.kernel_refs - 0.05);
        }

        // Fig 2d: kernel object pages are much shorter-lived than app pages.
        let d = fig2d(&reports);
        for r in &d {
            if r.slab_us > 0 {
                assert!(
                    r.app_us > r.slab_us,
                    "{}: app {}us vs slab {}us",
                    r.workload,
                    r.app_us,
                    r.slab_us
                );
            }
        }
        // Tables render.
        assert_eq!(fig2a_table(&rows).len(), rows.len());
        assert!(!fig2c_table(&c).is_empty());
        assert!(!fig2d_table(&d).is_empty());
    }
}
