//! Journal crash-recovery sweep (`repro crashsweep`, kfault only).
//!
//! Replays one workload many times, crashing deterministically at every
//! journal commit the fault-free run performs — at the commit boundary
//! (no journal block durable), after each of a few mid-commit block
//! counts (a torn record), and after the full record (commit durable,
//! crash immediately after). Each crash discards all volatile state,
//! runs [`kloc_kernel::recovery::recover`] over what reached the disk,
//! and audits the result with [`kloc_kernel::recovery::check`]: no
//! fsync'd page or committed metadata may be lost, and nothing torn may
//! survive replay.
//!
//! The sweep is exhaustive by construction: pass 1 runs fault-free to
//! learn the commit schedule (how many commits, how many journal blocks
//! each writes), then every crash point is a fresh deterministic run
//! with a [`CrashPoint::Commit`] fault plan, so the prefix up to the
//! crash is byte-for-byte the schedule pass 1 observed.

use kloc_kernel::hooks::Ctx;
use kloc_kernel::recovery::{check, recover, CrashViolation};
use kloc_kernel::{Kernel, KernelError, KernelParams};
use kloc_mem::{CrashPoint, DrainStats, FaultPlan, MemorySystem, Nanos, TierFaultKind, TierId};
use kloc_policy::PolicyKind;
use kloc_workloads::{Scale, WorkloadKind};

/// Result of recovering from one injected crash.
#[derive(Debug, Clone)]
pub struct CrashOutcome {
    /// Commit index the crash targeted (0-based).
    pub commit: u64,
    /// Journal blocks that reached the disk before the crash.
    pub after_blocks: u32,
    /// Virtual time of the crash.
    pub at: Nanos,
    /// Committed records replay applied.
    pub replayed: usize,
    /// Torn/uncommitted records replay discarded.
    pub torn: usize,
    /// Durable pages visible after recovery.
    pub pages: usize,
    /// Consistency violations the checker found (must be empty).
    pub violations: Vec<CrashViolation>,
}

/// Aggregate result of a sweep over one (workload, policy, scale).
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Workload label.
    pub workload: String,
    /// Policy label.
    pub policy: String,
    /// Commits the fault-free run performed.
    pub commits: usize,
    /// Commits actually swept (capped at [`MAX_COMMITS`]).
    pub commits_tested: usize,
    /// One entry per injected crash.
    pub outcomes: Vec<CrashOutcome>,
}

impl SweepSummary {
    /// Total consistency violations across every crash point.
    pub fn violations(&self) -> usize {
        self.outcomes.iter().map(|o| o.violations.len()).sum()
    }

    /// Paper-style one-paragraph rendering plus per-violation detail.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} / {}: {} commits ({} swept), {} crash points, {} violations\n",
            self.workload,
            self.policy,
            self.commits,
            self.commits_tested,
            self.outcomes.len(),
            self.violations(),
        );
        for o in &self.outcomes {
            if o.violations.is_empty() {
                continue;
            }
            for v in &o.violations {
                out.push_str(&format!(
                    "  VIOLATION at commit {} after {} blocks (t={}): {v}\n",
                    o.commit,
                    o.after_blocks,
                    o.at.as_nanos(),
                ));
            }
        }
        out
    }
}

/// Commit-schedule cap: at larger scales a run can commit thousands of
/// times and the sweep re-runs the workload per crash point, so sweep
/// at most this many commits, evenly sampled (the summary reports both
/// totals so the cap is never silent).
pub const MAX_COMMITS: usize = 32;

/// Runs the workload once, returning the kernel (for its durable-state
/// and promise ledgers), whether an injected crash ended the run, the
/// virtual time the run stopped, and the tier-drain counters (nonzero
/// only when the plan opened an `Offline` window over resident frames).
fn drive(
    workload: WorkloadKind,
    policy_kind: PolicyKind,
    scale: &Scale,
    plan: Option<FaultPlan>,
) -> Result<(Kernel, bool, Nanos, DrainStats), KernelError> {
    let mut mem = MemorySystem::two_tier(scale.fast_bytes, 8);
    let mut policy = policy_kind.build();
    mem.set_migration_cost(policy.migration_cost());
    mem.set_cpu_parallelism(scale.threads.max(1) as u64);
    if let Some(plan) = plan {
        mem.set_fault_plan(plan);
    }
    let mut kernel = Kernel::new(KernelParams {
        page_cache_budget: scale.page_cache_frames,
        ..KernelParams::default()
    });
    let mut workload = workload.build(scale);
    let tick_interval = policy.tick_interval();
    let mut next_tick = mem.now() + tick_interval;
    let crashed = 'run: {
        {
            let mut ctx = Ctx::new(&mut mem, policy.as_mut());
            match workload.setup(&mut kernel, &mut ctx) {
                Ok(()) => {}
                Err(KernelError::Crashed) => break 'run true,
                Err(e) => return Err(e),
            }
        }
        while !workload.is_done() {
            {
                let mut ctx = Ctx::new(&mut mem, policy.as_mut());
                match workload.step(&mut kernel, &mut ctx) {
                    Ok(()) => {}
                    Err(KernelError::Crashed) => break 'run true,
                    Err(e) => return Err(e),
                }
            }
            if mem.now() >= next_tick {
                // Tier drain rides the tick cadence, exactly as in the
                // engine's measured loop, so mid-drain crash points see
                // the same interleaving a real run would.
                let (db, rb, rc) = {
                    let p = kernel.params();
                    (p.drain_budget_frames, p.drain_retry_base, p.drain_retry_cap)
                };
                mem.drain_offline(db, rb, rc);
                policy.tick(&kernel, &mut mem);
                next_tick = mem.now() + tick_interval;
            }
        }
        false
    };
    let now = mem.now();
    let drain = *mem.drain_stats();
    Ok((kernel, crashed, now, drain))
}

/// Crash points for one commit that wrote `blocks` journal blocks: the
/// boundary (0 blocks durable), up to `mid_points` evenly spaced torn
/// prefixes, and the full record (commit durable, crash right after).
fn crash_points(blocks: u32, mid_points: u32) -> Vec<u32> {
    let mut points = vec![0];
    if blocks > 1 {
        let n = mid_points.min(blocks - 1);
        for k in 1..=n {
            points.push((u64::from(k) * u64::from(blocks) / u64::from(n + 1)).max(1) as u32);
        }
    }
    points.push(blocks);
    points.dedup();
    points
}

/// Sweeps every (sampled) commit of the workload with `mid_points`
/// mid-commit crashes per commit, checking each recovery.
///
/// # Errors
/// Propagates kernel errors other than the injected [`KernelError::Crashed`]
/// (any other error indicates a harness bug).
pub fn sweep(
    workload: WorkloadKind,
    policy: PolicyKind,
    scale: &Scale,
    mid_points: u32,
) -> Result<SweepSummary, KernelError> {
    // Pass 1: fault-free, to learn the commit schedule.
    let (kernel, crashed, _, _) = drive(workload, policy, scale, None)?;
    debug_assert!(!crashed, "fault-free pass cannot crash");
    let schedule: Vec<u32> = kernel
        .durable()
        .journal
        .iter()
        .map(|r| r.blocks_total)
        .collect();

    let commits = schedule.len();
    let step = commits.div_ceil(MAX_COMMITS).max(1);
    let mut outcomes = Vec::new();
    let mut commits_tested = 0usize;
    for (i, &blocks) in schedule.iter().enumerate().step_by(step) {
        commits_tested += 1;
        for j in crash_points(blocks, mid_points) {
            let plan = FaultPlan::new().with_crash(CrashPoint::Commit {
                index: i as u64,
                after_blocks: j,
            });
            let (kernel, crashed, at, _) = drive(workload, policy, scale, Some(plan))?;
            debug_assert!(crashed, "commit {i} crash point {j} did not fire");
            let recovered = recover(kernel.durable());
            let violations = check(kernel.durable(), kernel.promise(), &recovered);
            kloc_trace::emit(|| kloc_trace::Event::Recovery {
                t: at.as_nanos(),
                replayed: recovered.replayed as u64,
                torn: recovered.torn as u64,
                pages: recovered.pages.len() as u64,
            });
            outcomes.push(CrashOutcome {
                commit: i as u64,
                after_blocks: j,
                at,
                replayed: recovered.replayed,
                torn: recovered.torn,
                pages: recovered.pages.len(),
                violations,
            });
        }
    }
    Ok(SweepSummary {
        workload: workload.label().to_owned(),
        policy: policy.label().to_owned(),
        commits,
        commits_tested,
        outcomes,
    })
}

/// Outcome of one crash injected *inside an active drain window*: a
/// [`CrashPoint::At`] that fires while an `Offline` fault window covers
/// the fast tier and the tick-cadence drain is migrating frames off it.
#[derive(Debug, Clone)]
pub struct DrainCrashOutcome {
    /// Scheduled crash instant (inside the window).
    pub at: Nanos,
    /// Virtual time the crash actually fired.
    pub fired: Nanos,
    /// Frames the drain had migrated off the offline tier pre-crash.
    pub drained: u64,
    /// Committed records replay applied.
    pub replayed: usize,
    /// Torn/uncommitted records replay discarded.
    pub torn: usize,
    /// Consistency violations the checker found (must be empty).
    pub violations: Vec<CrashViolation>,
}

/// Aggregate result of [`sweep_drain_window`].
#[derive(Debug, Clone)]
pub struct DrainSweepSummary {
    /// Workload label.
    pub workload: String,
    /// Policy label.
    pub policy: String,
    /// The injected `Offline` window `[start, end)`.
    pub window: (Nanos, Nanos),
    /// One entry per injected mid-drain crash.
    pub outcomes: Vec<DrainCrashOutcome>,
}

impl DrainSweepSummary {
    /// Total consistency violations across every crash point.
    pub fn violations(&self) -> usize {
        self.outcomes.iter().map(|o| o.violations.len()).sum()
    }

    /// Paper-style one-paragraph rendering plus per-violation detail.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} / {}: {} mid-drain crashes in window [{}, {}), {} violations\n",
            self.workload,
            self.policy,
            self.outcomes.len(),
            self.window.0.as_nanos(),
            self.window.1.as_nanos(),
            self.violations(),
        );
        for o in &self.outcomes {
            if o.violations.is_empty() {
                continue;
            }
            for v in &o.violations {
                out.push_str(&format!(
                    "  VIOLATION at t={} ({} frames drained): {v}\n",
                    o.fired.as_nanos(),
                    o.drained,
                ));
            }
        }
        out
    }
}

/// Crashes the run at `points` evenly spaced instants inside an
/// `Offline` window covering the fast tier for the middle half of the
/// run, then checks each recovery. The drain is pure tier migration —
/// it never touches the journal — so a crash landing mid-drain must
/// recover exactly as cleanly as any other: fsync'd pages and committed
/// metadata survive, torn records are discarded.
///
/// # Errors
/// Propagates kernel errors other than the injected [`KernelError::Crashed`]
/// (any other error indicates a harness bug).
pub fn sweep_drain_window(
    workload: WorkloadKind,
    policy: PolicyKind,
    scale: &Scale,
    points: u32,
) -> Result<DrainSweepSummary, KernelError> {
    // Pass 1: fault-free, to learn the horizon the window is cut from.
    let (_, crashed, horizon, _) = drive(workload, policy, scale, None)?;
    debug_assert!(!crashed, "fault-free pass cannot crash");
    let t = horizon.as_nanos().max(99);
    let start = Nanos::new(t / 4);
    let end = Nanos::new(3 * t / 4);
    let span = end.as_nanos() - start.as_nanos();

    let points = points.max(1);
    let mut outcomes = Vec::new();
    for k in 0..points {
        // Strictly inside the window, evenly spaced.
        let at = Nanos::new(start.as_nanos() + (u64::from(k) + 1) * span / (u64::from(points) + 1));
        let plan = FaultPlan::new()
            .with_tier_fault(TierId::FAST, TierFaultKind::Offline, start, Some(end))
            .with_crash(CrashPoint::At(at));
        let (kernel, crashed, fired, drain) = drive(workload, policy, scale, Some(plan))?;
        debug_assert!(crashed, "mid-drain crash point {k} did not fire");
        let recovered = recover(kernel.durable());
        let violations = check(kernel.durable(), kernel.promise(), &recovered);
        kloc_trace::emit(|| kloc_trace::Event::Recovery {
            t: fired.as_nanos(),
            replayed: recovered.replayed as u64,
            torn: recovered.torn as u64,
            pages: recovered.pages.len() as u64,
        });
        outcomes.push(DrainCrashOutcome {
            at,
            fired,
            drained: drain.drained,
            replayed: recovered.replayed,
            torn: recovered.torn,
            violations,
        });
    }
    Ok(DrainSweepSummary {
        workload: workload.label().to_owned(),
        policy: policy.label().to_owned(),
        window: (start, end),
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_points_cover_boundary_torn_and_complete() {
        assert_eq!(crash_points(1, 2), vec![0, 1]);
        assert_eq!(crash_points(4, 2), vec![0, 1, 2, 4]);
        assert_eq!(crash_points(9, 3), vec![0, 2, 4, 6, 9]);
    }

    #[test]
    fn sweep_of_a_tiny_run_finds_no_violations() {
        let summary = sweep(WorkloadKind::Filebench, PolicyKind::Kloc, &Scale::tiny(), 1)
            .expect("sweep completes");
        assert!(summary.commits > 0, "workload must commit at least once");
        assert!(!summary.outcomes.is_empty());
        assert_eq!(summary.violations(), 0, "{}", summary.render());
        // Every crash produced a recovery; torn counts only appear for
        // mid-commit points.
        assert!(summary
            .outcomes
            .iter()
            .any(|o| o.torn > 0 || o.after_blocks == 0));
    }

    #[test]
    fn mid_drain_crashes_recover_cleanly() {
        let summary =
            sweep_drain_window(WorkloadKind::Filebench, PolicyKind::Kloc, &Scale::tiny(), 3)
                .expect("drain-window sweep completes");
        assert_eq!(summary.outcomes.len(), 3);
        assert_eq!(summary.violations(), 0, "{}", summary.render());
        // The window must actually exercise the drain: at least one
        // crash lands after frames moved off the offline tier.
        assert!(
            summary.outcomes.iter().any(|o| o.drained > 0),
            "no crash point observed an active drain: {}",
            summary.render()
        );
        // Every crash fired at or after its scheduled instant.
        for o in &summary.outcomes {
            assert!(o.fired >= o.at);
        }
    }
}
