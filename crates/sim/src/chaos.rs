//! QoS-aware graceful-degradation soak (`repro chaos`, kfault only).
//!
//! Composes every degradation mechanism this codebase models into one
//! deterministic scenario and checks the QoS contract held end to end
//! (DESIGN.md §13). The soak drives the budgeted multi-tenant workload
//! under the KLOC policy twice:
//!
//! 1. **Fault-free pass** — learns the virtual horizon `T` of the run.
//! 2. **Chaos pass** — replays the same run with an `Offline` fault
//!    window covering the fast tier for the middle third `[T/3, 2T/3)`,
//!    injected disk-I/O and migration faults inside the window, and a
//!    budget-resize schedule that halves the best-effort tenant's caps
//!    at `T/3` and restores them at `2T/3`.
//!
//! The chaos pass samples per-tenant kernel counters at the two phase
//! boundaries, splitting the run into *baseline*, *degraded*, and
//! *recovered* phases, then audits the per-phase deltas against the
//! QoS SLOs: the guaranteed tenant must finish unharmed (no cross
//! evictions suffered, never preempted), the best-effort tenant must
//! absorb the pressure (measurably preempted), the burstable tenant's
//! degradation must stay bounded by the best-effort tenant's, the tier
//! drain must have made progress without abandoning frames, and the
//! journal must still satisfy the crash-recovery checker.
//!
//! Everything runs on the virtual clock in one thread, so the rendered
//! report is byte-identical at any `--jobs` or `--shards` setting — CI
//! diffs it across both axes.

use kloc_kernel::hooks::Ctx;
use kloc_kernel::recovery::{check, recover};
use kloc_kernel::{Kernel, KernelError, KernelParams, QosClass, TenantStats};
use kloc_mem::{
    DiskOp, DrainStats, FaultPlan, MemorySystem, Nanos, TierFaultKind, TierId,
};
use kloc_policy::PolicyKind;
use kloc_workloads::{MultiTenant, Scale, WorkloadKind};

use crate::engine::BudgetEvent;
use crate::report::Table;

/// Phase labels, in virtual-time order.
pub const PHASES: [&str; 3] = ["baseline", "degraded", "recovered"];

/// Per-tenant counter deltas over one phase of the chaos pass.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// Phase label (one of [`PHASES`]).
    pub phase: &'static str,
    /// Tenant name from its [`kloc_kernel::TenantSpec`].
    pub tenant: String,
    /// QoS class label.
    pub qos: String,
    /// Page-cache insertions during the phase.
    pub inserted: u64,
    /// Budget self-evictions during the phase.
    pub self_evicted: u64,
    /// Cross-tenant evictions suffered during the phase.
    pub cross_suffered: u64,
    /// QoS preemptions (reclaim or resize) during the phase.
    pub preempted: u64,
    /// Resident page-cache pages at the end of the phase.
    pub resident_end: u64,
}

/// One SLO audit, with a human-readable detail line.
#[derive(Debug, Clone)]
pub struct SloCheck {
    /// Short invariant name.
    pub name: &'static str,
    /// Whether the invariant held.
    pub ok: bool,
    /// What was measured.
    pub detail: String,
}

/// Everything the chaos soak observed, renderable as a deterministic
/// plain-text report.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Scale label the soak ran at.
    pub scale: String,
    /// Fault-free horizon the window was derived from.
    pub horizon: Nanos,
    /// Offline-window start (also the budget-shrink instant).
    pub window_start: Nanos,
    /// Offline-window end (also the budget-restore instant).
    pub window_end: Nanos,
    /// Virtual time the chaos pass finished.
    pub end: Nanos,
    /// Tenant x phase counter deltas, in spec-then-phase order.
    pub rows: Vec<PhaseRow>,
    /// Tier-drain counters accumulated over the chaos pass.
    pub drain: DrainStats,
    /// Journal records replay applied after the run.
    pub replayed: usize,
    /// Torn records replay discarded.
    pub torn: usize,
    /// Crash-recovery checker violations (must be 0).
    pub violations: usize,
    /// The SLO audits.
    pub checks: Vec<SloCheck>,
}

impl ChaosReport {
    /// Number of SLO checks that failed.
    pub fn breaches(&self) -> usize {
        self.checks.iter().filter(|c| !c.ok).count()
    }

    /// The per-tenant, per-phase degradation table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("chaos soak at scale {} (degradation by phase)", self.scale),
            &[
                "tenant", "qos", "phase", "inserted", "self-evict", "x-suffered", "preempted",
                "resident",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.tenant.clone(),
                r.qos.clone(),
                r.phase.to_owned(),
                r.inserted.to_string(),
                r.self_evicted.to_string(),
                r.cross_suffered.to_string(),
                r.preempted.to_string(),
                r.resident_end.to_string(),
            ]);
        }
        t
    }

    /// Full report: table, drain/recovery summary, SLO verdicts.
    pub fn render(&self) -> String {
        let mut out = self.table().to_string();
        out.push_str(&format!(
            "offline window [{}, {}) of horizon {} ns; run ended at {} ns\n",
            self.window_start.as_nanos(),
            self.window_end.as_nanos(),
            self.horizon.as_nanos(),
            self.end.as_nanos(),
        ));
        out.push_str(&format!(
            "drain: {} frames moved, {} retries, {} abandoned, {} passes\n",
            self.drain.drained, self.drain.retries, self.drain.failed, self.drain.passes,
        ));
        out.push_str(&format!(
            "recovery: {} replayed, {} torn, {} violations\n",
            self.replayed, self.torn, self.violations,
        ));
        for c in &self.checks {
            out.push_str(&format!(
                "  [{}] {}: {}\n",
                if c.ok { "ok" } else { "FAIL" },
                c.name,
                c.detail,
            ));
        }
        out.push_str(&if self.breaches() == 0 {
            "CHAOS OK: QoS contract held through drain, faults, and resize\n".to_owned()
        } else {
            format!("CHAOS FAILED: {} SLO breach(es)\n", self.breaches())
        });
        out
    }
}

/// What one drive of the workload produced.
struct Drive {
    kernel: Kernel,
    end: Nanos,
    /// One per entry in `bounds`, plus a final end-of-run snapshot;
    /// each is the tenants' stats in spec order.
    samples: Vec<Vec<TenantStats>>,
    drain: DrainStats,
}

/// Runs the budgeted multi-tenant workload under the KLOC policy,
/// applying `budgets` at their scheduled instants and snapshotting
/// per-tenant stats whenever the clock crosses an entry of `bounds`
/// (sorted ascending). Mirrors the engine's measured loop — tenant
/// registration, budget-resize application, and tier drain at the tick
/// cadence — without its report plumbing, so phases can be sampled
/// mid-run.
fn drive(
    scale: &Scale,
    plan: Option<FaultPlan>,
    budgets: &[BudgetEvent],
    bounds: &[Nanos],
) -> Result<Drive, KernelError> {
    let mut mem = MemorySystem::two_tier(scale.fast_bytes, 8);
    let mut policy = PolicyKind::Kloc.build();
    mem.set_migration_cost(policy.migration_cost());
    mem.set_cpu_parallelism(scale.threads.max(1) as u64);
    if let Some(plan) = plan {
        mem.set_fault_plan(plan);
    }
    let mut params = KernelParams {
        page_cache_budget: scale.page_cache_frames,
        ..KernelParams::default()
    };
    let shards = crate::engine::default_shards();
    if shards != 0 {
        params.shards = shards;
    }
    mem.set_shards(kloc_mem::ShardConfig::with_shards(params.shards));
    let mut kernel = Kernel::new(params);
    let mut workload = WorkloadKind::Tenants { budgeted: true }.build(scale);
    let specs = workload.tenant_specs();
    for spec in &specs {
        kernel.register_tenant(spec.clone());
    }
    policy.configure_tenants(&specs);

    let snapshot = |kernel: &Kernel| -> Vec<TenantStats> {
        specs.iter().map(|s| kernel.tenant_stats(s.id)).collect()
    };

    let mut budgets: Vec<BudgetEvent> = budgets.to_vec();
    budgets.sort_by_key(|b| (b.at, b.tenant.0));
    let mut next_budget = 0usize;
    let mut next_bound = 0usize;
    let mut samples: Vec<Vec<TenantStats>> = Vec::new();
    let tick_interval = policy.tick_interval();
    let mut next_tick = mem.now() + tick_interval;

    {
        let mut ctx = Ctx::new(&mut mem, policy.as_mut());
        workload.setup(&mut kernel, &mut ctx)?;
    }
    while !workload.is_done() {
        {
            let mut ctx = Ctx::new(&mut mem, policy.as_mut());
            workload.step(&mut kernel, &mut ctx)?;
        }
        // Phase boundaries sample *before* same-instant budget events,
        // so resize evictions land in the phase the resize opens.
        while next_bound < bounds.len() && mem.now() >= bounds[next_bound] {
            samples.push(snapshot(&kernel));
            next_bound += 1;
        }
        while next_budget < budgets.len() && mem.now() >= budgets[next_budget].at {
            let ev = budgets[next_budget].clone();
            next_budget += 1;
            let before = kernel
                .tenants()
                .spec(ev.tenant)
                .map(|s| (s.pc_budget, s.fast_budget_frames));
            let applied = {
                let mut ctx = Ctx::new(&mut mem, policy.as_mut());
                kernel.resize_tenant_budget(&mut ctx, ev.tenant, ev.pc_budget, ev.fast_budget_frames)?
            };
            if applied {
                let (old_pc, old_fast) = before.unwrap_or((None, None));
                let t = mem.now().as_nanos();
                if old_pc != ev.pc_budget {
                    kloc_trace::emit(|| kloc_trace::Event::BudgetResize {
                        t,
                        tenant: u64::from(ev.tenant.0),
                        kind: "pc".to_owned(),
                        from: old_pc.unwrap_or(0),
                        to: ev.pc_budget.unwrap_or(0),
                    });
                }
                if old_fast != ev.fast_budget_frames {
                    kloc_trace::emit(|| kloc_trace::Event::BudgetResize {
                        t,
                        tenant: u64::from(ev.tenant.0),
                        kind: "fast".to_owned(),
                        from: old_fast.unwrap_or(0),
                        to: ev.fast_budget_frames.unwrap_or(0),
                    });
                }
                if let Some(spec) = kernel.tenants().spec(ev.tenant) {
                    policy.configure_tenants(std::slice::from_ref(&spec.clone()));
                }
            }
        }
        if mem.now() >= next_tick {
            let (db, rb, rc) = {
                let p = kernel.params();
                (p.drain_budget_frames, p.drain_retry_base, p.drain_retry_cap)
            };
            mem.drain_offline(db, rb, rc);
            policy.tick(&kernel, &mut mem);
            next_tick = mem.now() + tick_interval;
        }
    }
    // A pass that ends before a boundary (can only happen if faults
    // shortened the run, which they never do) still yields one sample
    // per boundary so phase indexing stays total.
    while next_bound < bounds.len() {
        samples.push(snapshot(&kernel));
        next_bound += 1;
    }
    samples.push(snapshot(&kernel));
    let end = mem.now();
    let drain = *mem.drain_stats();
    Ok(Drive {
        kernel,
        end,
        samples,
        drain,
    })
}

/// Halves a cap (a shrunk cap never reaches zero: panic→clamp style).
fn halve(cap: Option<u64>) -> Option<u64> {
    cap.map(|c| (c / 2).max(1))
}

/// Runs the full chaos soak at `scale` and audits the SLOs.
///
/// # Errors
/// Propagates kernel errors — the scenario injects no crash, so any
/// error is a harness bug, not an expected outcome.
pub fn run(scale: &Scale) -> Result<ChaosReport, KernelError> {
    // The soak runs outside the sweep runner, so it installs its own
    // per-thread recorder when a trace session is collecting; both
    // passes and the recovery check land in one run slice.
    if kloc_trace::session_active() {
        kloc_trace::run_begin();
    }
    let report = run_inner(scale);
    if kloc_trace::session_active() {
        kloc_trace::session_append(&kloc_trace::run_take());
    }
    report
}

fn run_inner(scale: &Scale) -> Result<ChaosReport, KernelError> {
    // Pass 1: fault-free, to learn the horizon.
    let free = drive(scale, None, &[], &[])?;
    let t = free.end.as_nanos().max(99);
    let window_start = Nanos::new(t / 3);
    let window_end = Nanos::new(2 * t / 3);

    // The chaos plan: fast tier offline for the middle third, plus
    // disk-I/O and migration faults landing inside the window.
    let plan = FaultPlan::new()
        .with_tier_fault(
            TierId::FAST,
            TierFaultKind::Offline,
            window_start,
            Some(window_end),
        )
        .with_disk_fault(Nanos::new(t / 2), DiskOp::Write, 2)
        .with_disk_fault(Nanos::new(t / 2), DiskOp::Read, 2)
        .with_migration_fault(window_start, 2);

    // Budget-resize schedule: halve the best-effort tenant's caps for
    // the duration of the window, then restore them.
    let specs = MultiTenant::specs(scale, true);
    let shrunk = specs
        .iter()
        .find(|s| s.qos == QosClass::BestEffort)
        .cloned()
        .expect("multi-tenant workload has a best-effort tenant");
    let budgets = vec![
        BudgetEvent {
            at: window_start,
            tenant: shrunk.id,
            pc_budget: halve(shrunk.pc_budget),
            fast_budget_frames: halve(shrunk.fast_budget_frames),
        },
        BudgetEvent {
            at: window_end,
            tenant: shrunk.id,
            pc_budget: shrunk.pc_budget,
            fast_budget_frames: shrunk.fast_budget_frames,
        },
    ];

    // Pass 2: the chaos pass, sampled at the phase boundaries.
    let chaos = drive(scale, Some(plan), &budgets, &[window_start, window_end])?;
    let recovered = recover(chaos.kernel.durable());
    let violations = check(chaos.kernel.durable(), chaos.kernel.promise(), &recovered);

    let zero = vec![TenantStats::default(); specs.len()];
    let mut rows = Vec::new();
    for (ti, spec) in specs.iter().enumerate() {
        for (pi, phase) in PHASES.iter().enumerate() {
            let prev = if pi == 0 { &zero } else { &chaos.samples[pi - 1] };
            let cur = &chaos.samples[pi];
            rows.push(PhaseRow {
                phase,
                tenant: spec.name.clone(),
                qos: spec.qos.to_string(),
                inserted: cur[ti].pc_inserted - prev[ti].pc_inserted,
                self_evicted: cur[ti].pc_self_evicted - prev[ti].pc_self_evicted,
                cross_suffered: cur[ti].cross_evictions_suffered
                    - prev[ti].cross_evictions_suffered,
                preempted: cur[ti].preempted - prev[ti].preempted,
                resident_end: cur[ti].pc_resident,
            });
        }
    }

    let by_qos = |q: QosClass| -> &TenantStats {
        let i = specs
            .iter()
            .position(|s| s.qos == q)
            .expect("every QoS class is represented");
        &chaos.samples[PHASES.len() - 1][i]
    };
    let g = by_qos(QosClass::Guaranteed);
    let b = by_qos(QosClass::Burstable);
    let e = by_qos(QosClass::BestEffort);
    let checks = vec![
        SloCheck {
            name: "guaranteed-unharmed",
            ok: g.cross_evictions_suffered == 0 && g.preempted == 0,
            detail: format!(
                "guaranteed tenant suffered {} cross evictions, {} preemptions (want 0/0)",
                g.cross_evictions_suffered, g.preempted,
            ),
        },
        SloCheck {
            name: "best-effort-degrades",
            ok: e.preempted > 0,
            detail: format!(
                "best-effort tenant preempted {} times (want > 0: it absorbs the pressure)",
                e.preempted,
            ),
        },
        SloCheck {
            name: "burstable-bounded",
            ok: b.cross_evictions_suffered == 0 && b.preempted <= e.preempted,
            detail: format!(
                "burstable tenant: {} cross suffered (want 0), {} preemptions (want <= {})",
                b.cross_evictions_suffered, b.preempted, e.preempted,
            ),
        },
        SloCheck {
            name: "drain-progress",
            ok: chaos.drain.drained > 0 && chaos.drain.failed == 0,
            detail: format!(
                "{} frames drained off the offline tier, {} abandoned (want > 0 / 0)",
                chaos.drain.drained, chaos.drain.failed,
            ),
        },
        SloCheck {
            name: "recovery-clean",
            ok: violations.is_empty(),
            detail: format!(
                "{} journal records replayed, {} torn, {} checker violations (want 0)",
                recovered.replayed,
                recovered.torn,
                violations.len(),
            ),
        },
    ];

    Ok(ChaosReport {
        scale: scale.label.to_owned(),
        horizon: free.end,
        window_start,
        window_end,
        end: chaos.end,
        rows,
        drain: chaos.drain,
        replayed: recovered.replayed,
        torn: recovered.torn,
        violations: violations.len(),
        checks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_soak_holds_the_qos_contract_at_tiny_scale() {
        let report = run(&Scale::tiny()).expect("chaos soak completes");
        assert_eq!(report.breaches(), 0, "{}", report.render());
        assert_eq!(report.violations, 0);
        assert!(report.drain.drained > 0, "{}", report.render());
        // Three tenants x three phases.
        assert_eq!(report.rows.len(), 9);
    }

    #[test]
    fn chaos_report_renders_every_phase_and_verdict() {
        let report = run(&Scale::tiny()).expect("chaos soak completes");
        let text = report.render();
        for phase in PHASES {
            assert!(text.contains(phase), "missing phase {phase}: {text}");
        }
        assert!(text.contains("CHAOS OK"), "{text}");
        assert!(text.contains("drain:"), "{text}");
        assert!(text.contains("recovery:"), "{text}");
    }

    #[test]
    fn chaos_soak_is_deterministic() {
        let a = run(&Scale::tiny()).expect("first soak");
        let b = run(&Scale::tiny()).expect("second soak");
        assert_eq!(a.render(), b.render());
        assert_eq!(a.end, b.end);
        assert_eq!(a.drain, b.drain);
    }
}
