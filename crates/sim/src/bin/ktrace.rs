//! `ktrace` — analyze `kloc-trace` JSONL files.
//!
//! ```text
//! ktrace summary  TRACE            # per-run overview + event counts
//! ktrace timeline TRACE [--ino N]  # per-KLOC tier-residency timelines
//! ktrace attrib   TRACE            # virtual-time flamegraph fold
//! ktrace rollup   TRACE            # counter totals + log2 histograms
//! ktrace schema                    # the event schema reference
//! ```
//!
//! Collect a trace with a `trace`-enabled build:
//! `cargo run --release --features trace --bin repro -- all --scale tiny --trace out.jsonl`.

use std::process::ExitCode;

use kloc_sim::ktrace;
use kloc_trace::Event;

fn usage() -> ExitCode {
    eprintln!("usage: ktrace <summary|timeline|attrib|rollup> TRACE [--ino N] | ktrace schema");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        return usage();
    };
    if cmd == "schema" {
        print!("{}", ktrace::render_schema());
        return ExitCode::SUCCESS;
    }
    let Some(path) = args.get(1) else {
        return usage();
    };
    let mut ino = None;
    if let Some(pos) = args.iter().position(|a| a == "--ino") {
        match args.get(pos + 1).and_then(|s| s.parse::<u64>().ok()) {
            Some(n) => ino = Some(n),
            None => return usage(),
        }
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = match Event::parse_all(&text) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = match cmd {
        "summary" => ktrace::render_summary(&events),
        "timeline" => ktrace::render_timeline(&events, ino),
        "attrib" => ktrace::render_attrib(&events),
        "rollup" => ktrace::render_rollup(&events),
        _ => return usage(),
    };
    print!("{out}");
    ExitCode::SUCCESS
}
