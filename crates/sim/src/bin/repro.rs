//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--scale tiny|small|large|huge] [--seed N] [--jobs N] [--shards N] [--trace FILE]
//!
//! experiments:
//!   fig2a fig2b fig2c fig2d   motivation study
//!   fig4                      two-tier speedups
//!   fig5a fig5b fig5c         Optane / sources / sensitivity
//!   fig6                      capacity x bandwidth sweep
//!   table6                    KLOC metadata overhead
//!   percpu prefetch           ablations (4.3, 7.3)
//!   thp granularity           future-work extensions (5, 4.4)
//!   tenants                   tenant isolation (budgets off vs on)
//!   run --workload W --policy P   one run (trace-friendly)
//!   crashsweep                journal crash-recovery sweep (kfault builds)
//!   chaos                     QoS graceful-degradation soak (kfault builds)
//!   all                       everything above (except `run`/`crashsweep`/`chaos`/`tenants`)
//! ```
//!
//! `--jobs N` sets the sweep-runner thread count (default: one per
//! hardware thread; `--jobs 1` forces serial execution). Results are
//! identical at any job count — runs are independent and deterministic.
//!
//! `--shards N` sets the shard count of the sharded hot-path structures
//! (frame free lists, page-cache LRU, cache reverse map). Like `--jobs`,
//! it is observably inert: reports are byte-identical at any value.
//!
//! `--trace FILE` (builds with `--features trace` only) collects a
//! `kloc-trace` JSONL document covering every run the invocation
//! executes and writes it to FILE; analyze it with the `ktrace` binary.
//! Trace bytes are byte-identical at any `--jobs` count.
//!
//! kfault builds (`--features kfault`) add three things: `repro
//! crashsweep [--crash-points N]` runs the journal crash-recovery
//! sweep (fails if the consistency checker finds any violation),
//! `repro chaos` runs the QoS graceful-degradation soak (fails on any
//! SLO breach; its report is byte-identical at any `--jobs`/`--shards`
//! setting), and `repro run --fault-seed N` injects a seeded
//! disk/tier/migration fault plan into the single run.

use std::process::ExitCode;

use kloc_mem::{FaultPlan, Nanos};
use kloc_policy::PolicyKind;
use kloc_sim::engine::{Platform, RunConfig};
use kloc_sim::experiments::{ablations, fig2, fig4, fig5, fig6, table6, tenants};
use kloc_sim::Runner;
use kloc_workloads::{Scale, WorkloadKind};

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <fig2a|fig2b|fig2c|fig2d|fig4|fig5a|fig5b|fig5c|fig6|table6|percpu|prefetch|thp|granularity|tenants|all> [--scale tiny|small|large|huge] [--seed N] [--jobs N] [--shards N] [--trace FILE]\n       repro run --workload <rocksdb|redis|filebench|cassandra|spark|tenants|tenants-nobudget> --policy <naive|nimble|nimble++|kloc-nomigration|kloc|all-fast|all-slow|autonuma|autonuma-kloc> [--fault-seed N] [options]\n       repro crashsweep [--crash-points N] [options]    (kfault builds)\n       repro chaos [options]                             (kfault builds)"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(which) = args.first().cloned() else {
        return usage();
    };
    let mut scale = Scale::large();
    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        match args.get(pos + 1).map(String::as_str) {
            Some("tiny") => scale = Scale::tiny(),
            Some("small") => scale = Scale::small(),
            Some("large") => scale = Scale::large(),
            Some("huge") => scale = Scale::huge(),
            _ => return usage(),
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "--shards") {
        match args.get(pos + 1).and_then(|s| s.parse::<u32>().ok()) {
            Some(shards) if shards >= 1 => kloc_sim::engine::set_default_shards(shards),
            _ => return usage(),
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        match args.get(pos + 1).and_then(|s| s.parse::<u64>().ok()) {
            Some(seed) => scale = scale.with_seed(seed),
            None => return usage(),
        }
    }
    let mut runner = Runner::auto();
    if let Some(pos) = args.iter().position(|a| a == "--jobs") {
        match args.get(pos + 1).and_then(|s| s.parse::<usize>().ok()) {
            Some(jobs) if jobs >= 1 => runner = Runner::new(jobs),
            _ => return usage(),
        }
    }
    let mut trace_path = None;
    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        match args.get(pos + 1) {
            Some(path) => trace_path = Some(path.clone()),
            None => return usage(),
        }
    }
    if trace_path.is_some() {
        kloc_trace::session_begin();
        if !kloc_trace::session_active() {
            eprintln!("error: --trace needs a trace-enabled build (cargo ... --features trace)");
            return ExitCode::FAILURE;
        }
    }
    match run(&which, &runner, &scale, &args) {
        Ok(()) => {
            if let Some(path) = trace_path {
                let jsonl = kloc_trace::session_take();
                if let Err(e) = std::fs::write(&path, jsonl) {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("[trace written to {path}]");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `--workload` / `--policy` for the single-run experiment.
fn single_run_config(args: &[String], scale: &Scale) -> Result<RunConfig, String> {
    let value_of = |flag: &str| -> Result<String, String> {
        let pos = args
            .iter()
            .position(|a| a == flag)
            .ok_or_else(|| format!("`repro run` needs {flag}"))?;
        args.get(pos + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let workload = match value_of("--workload")?.to_lowercase().as_str() {
        "rocksdb" => WorkloadKind::RocksDb,
        "redis" => WorkloadKind::Redis,
        "filebench" => WorkloadKind::Filebench,
        "cassandra" => WorkloadKind::Cassandra,
        "spark" => WorkloadKind::Spark,
        "tenants" => WorkloadKind::Tenants { budgeted: true },
        "tenants-nobudget" => WorkloadKind::Tenants { budgeted: false },
        other => return Err(format!("unknown workload: {other}")),
    };
    let policy = match value_of("--policy")?.to_lowercase().as_str() {
        "all-fast" => PolicyKind::AllFast,
        "all-slow" => PolicyKind::AllSlow,
        "naive" => PolicyKind::Naive,
        "nimble" => PolicyKind::Nimble,
        "nimble++" => PolicyKind::NimblePlusPlus,
        "kloc-nomigration" => PolicyKind::KlocNoMigration,
        "kloc" => PolicyKind::Kloc,
        "autonuma" => PolicyKind::AutoNuma,
        "autonuma-kloc" => PolicyKind::AutoNumaKloc,
        other => return Err(format!("unknown policy: {other}")),
    };
    let mut faults = None;
    if let Some(pos) = args.iter().position(|a| a == "--fault-seed") {
        let seed = args
            .get(pos + 1)
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or("--fault-seed needs a number")?;
        if cfg!(not(feature = "kfault")) {
            return Err(
                "--fault-seed needs a kfault-enabled build (cargo ... --features kfault)"
                    .to_owned(),
            );
        }
        // The horizon only has to land the plan's faults inside the run;
        // tiny/small/large runs all exceed one virtual microsecond per op.
        faults = Some(FaultPlan::seeded(seed, Nanos::from_micros(scale.ops)));
    }
    Ok(RunConfig {
        workload,
        policy,
        scale: scale.clone(),
        platform: platform_for(scale),
        kernel_params: None,
        faults,
        budgets: Vec::new(),
    })
}

fn platform_for(scale: &Scale) -> Platform {
    Platform::TwoTier {
        fast_bytes: scale.fast_bytes,
        bw_ratio: 8,
    }
}

fn run(
    which: &str,
    runner: &Runner,
    scale: &Scale,
    args: &[String],
) -> Result<(), Box<dyn std::error::Error>> {
    if which == "run" {
        let config = single_run_config(args, scale)?;
        eprintln!(
            "[single run: {} / {} at scale {}...]",
            config.workload.label(),
            config.policy.label(),
            scale.label
        );
        let report = &runner.run_all(vec![config])?[0];
        println!(
            "{} / {}: {} ops in {} ns virtual ({:.0} ops/s, {:.1}% fast-tier accesses)",
            report.workload,
            report.policy,
            report.ops,
            report.elapsed.as_nanos(),
            report.throughput(),
            100.0 * report.fast_access_fraction(),
        );
        if report.io_errors > 0 || report.io_retries > 0 {
            println!(
                "  faults: {} disk I/O errors, {} blk-mq retries",
                report.io_errors, report.io_retries
            );
        }
        return Ok(());
    }
    if which == "tenants" {
        eprintln!(
            "[tenant isolation at scale {} (budgets off vs on)...]",
            scale.label
        );
        let iso = tenants::run(runner, scale, platform_for(scale))?;
        println!("{}", tenants::table(&iso));
        println!("{}", iso.verdict());
        if !iso.isolated() {
            return Err("per-tenant budgets failed to isolate the tenants".into());
        }
        return Ok(());
    }
    if which == "chaos" {
        #[cfg(feature = "kfault")]
        {
            eprintln!("[chaos soak at scale {} (drain + faults + resize)...]", scale.label);
            let report = kloc_sim::chaos::run(scale)?;
            print!("{}", report.render());
            if report.breaches() > 0 {
                return Err(format!("chaos soak found {} SLO breach(es)", report.breaches()).into());
            }
            return Ok(());
        }
        #[cfg(not(feature = "kfault"))]
        return Err("chaos needs a kfault-enabled build (cargo ... --features kfault)".into());
    }
    if which == "crashsweep" {
        #[cfg(feature = "kfault")]
        {
            let mid_points = match args.iter().position(|a| a == "--crash-points") {
                Some(pos) => args
                    .get(pos + 1)
                    .and_then(|s| s.parse::<u32>().ok())
                    .ok_or("--crash-points needs a number")?,
                None => 2,
            };
            eprintln!(
                "[crashsweep at scale {} ({mid_points} mid-commit points per commit)...]",
                scale.label
            );
            let mut violations = 0;
            for w in [WorkloadKind::Filebench, WorkloadKind::RocksDb] {
                let summary = kloc_sim::crashsweep::sweep(w, PolicyKind::Kloc, scale, mid_points)?;
                print!("{}", summary.render());
                violations += summary.violations();
                // Crashes planted inside an active tier-drain window:
                // the drain is journal-free, so recovery must stay clean.
                let drains = kloc_sim::crashsweep::sweep_drain_window(
                    w,
                    PolicyKind::Kloc,
                    scale,
                    mid_points.max(1),
                )?;
                print!("{}", drains.render());
                violations += drains.violations();
            }
            if violations > 0 {
                return Err(format!("crash-recovery checker found {violations} violations").into());
            }
            return Ok(());
        }
        #[cfg(not(feature = "kfault"))]
        return Err("crashsweep needs a kfault-enabled build (cargo ... --features kfault)".into());
    }
    let all = which == "all";
    let small_pair = |s: &Scale| {
        // Fig 2b needs both scales, resized to keep runtime similar.
        let mut small = Scale::small();
        small.ops = s.ops / 2;
        small
    };

    if all || which.starts_with("fig2") {
        eprintln!(
            "[motivation runs at scale {} ({} jobs)...]",
            scale.label,
            runner.jobs()
        );
        let reports = fig2::run_all(runner, scale)?;
        if all || which == "fig2a" {
            println!("{}", fig2::fig2a_table(&fig2::fig2a(&reports)));
            println!("{}", fig2::fig2a_detailed_table(&reports));
        }
        if all || which == "fig2b" {
            let small = fig2::run_all(runner, &small_pair(scale))?;
            println!("{}", fig2::fig2b_table(&fig2::fig2b(&small, &reports)));
        }
        if all || which == "fig2c" {
            println!("{}", fig2::fig2c_table(&fig2::fig2c(&reports)));
        }
        if all || which == "fig2d" {
            println!("{}", fig2::fig2d_table(&fig2::fig2d(&reports)));
        }
        if !all {
            return Ok(());
        }
    }

    if all || which == "fig4" {
        eprintln!("[fig4: two-tier speedups...]");
        let rows = fig4::run(runner, scale, platform_for(scale), &WorkloadKind::ALL)?;
        println!("{}", fig4::table(&rows));
        if !all {
            return Ok(());
        }
    }

    if all || which == "fig5a" {
        eprintln!("[fig5a: Optane Memory Mode...]");
        let rows = fig5::fig5a(runner, scale, &WorkloadKind::EVALUATED)?;
        println!("{}", fig5::fig5a_table(&rows));
        if !all {
            return Ok(());
        }
    }

    if all || which == "fig5b" {
        eprintln!("[fig5b: sources of improvement (RocksDB)...]");
        let rows = fig5::fig5b(runner, scale, platform_for(scale))?;
        println!("{}", fig5::fig5b_table(&rows));
        if !all {
            return Ok(());
        }
    }

    if all || which == "fig5c" {
        eprintln!("[fig5c: per-object-class sensitivity...]");
        let rows = fig5::fig5c(runner, scale, platform_for(scale), &WorkloadKind::EVALUATED)?;
        println!("{}", fig5::fig5c_table(&rows));
        if !all {
            return Ok(());
        }
    }

    if all || which == "fig6" {
        eprintln!("[fig6: capacity x bandwidth sweep...]");
        let cells = fig6::run(
            runner,
            scale,
            &WorkloadKind::EVALUATED,
            &fig6::CAPACITIES,
            &fig6::RATIOS,
        )?;
        println!("{}", fig6::table(&cells));
        if !all {
            return Ok(());
        }
    }

    if all || which == "table6" {
        eprintln!("[table6: KLOC metadata overhead...]");
        let rows = table6::run(runner, scale, &WorkloadKind::ALL)?;
        println!("{}", table6::table(&rows));
        if !all {
            return Ok(());
        }
    }

    if all || which == "percpu" {
        eprintln!("[ablation: per-CPU knode lists...]");
        let a = ablations::percpu(runner, scale)?;
        println!("{}", ablations::percpu_table(&a));
        if !all {
            return Ok(());
        }
    }

    if all || which == "prefetch" {
        eprintln!("[ablation: KLOC-aware prefetch...]");
        let a = ablations::prefetch(runner, scale, WorkloadKind::Spark)?;
        println!("{}", ablations::prefetch_table(&a));
        if !all {
            return Ok(());
        }
    }

    if all || which == "thp" {
        eprintln!("[ablation: transparent huge pages (paper 5 hypothesis)...]");
        let a = ablations::thp(runner, scale, &[WorkloadKind::RocksDb, WorkloadKind::Redis])?;
        println!("{}", ablations::thp_table(&a));
        if !all {
            return Ok(());
        }
    }

    if all || which == "granularity" {
        eprintln!("[ablation: tracking granularity (paper 4.4 future work)...]");
        let a = ablations::granularity(runner, scale, &WorkloadKind::EVALUATED)?;
        println!("{}", ablations::granularity_table(&a));
        if !all {
            return Ok(());
        }
    }

    if !all
        && !matches!(
            which,
            "fig2a"
                | "fig2b"
                | "fig2c"
                | "fig2d"
                | "fig4"
                | "fig5a"
                | "fig5b"
                | "fig5c"
                | "fig6"
                | "table6"
                | "percpu"
                | "prefetch"
                | "thp"
                | "granularity"
        )
    {
        return Err(format!("unknown experiment: {which}").into());
    }
    Ok(())
}
