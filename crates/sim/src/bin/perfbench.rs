//! `perfbench` — wall-clock benchmarks of the simulator itself.
//!
//! Two modes, selected with `--mode` (default `sweep`):
//!
//! * `sweep` — times one fixed fig6-style sweep (capacity x ratio x
//!   policy x workload) executed serially and then with the parallel
//!   runner, checks the reports are identical, and writes
//!   `BENCH_sweep.json`. This measures *cross-run* scaling (PR 1).
//! * `run` — times individual `engine::run` executions per
//!   (policy, workload, scale) and writes `BENCH_run.json`. This
//!   measures the *per-run* hot path — policy bookkeeping, knode
//!   aging, cold-set selection — and is the committed perf trajectory
//!   for single-run optimizations.
//!
//! ```text
//! perfbench [--mode sweep|run] [--scale tiny|small|large|huge] [--jobs N]
//!           [--reps N] [--shards N] [--out PATH] [--check]
//! ```
//!
//! Defaults: `--mode sweep`, `--scale small` (sweep) or the
//! small+large+huge matrix (run), `--jobs` = hardware threads, `--reps
//! 3`, `--out BENCH_sweep.json` / `BENCH_run.json` per mode. Exits
//! non-zero if repeated runs are not byte-identical. Dependency-free:
//! timing via `std::time::Instant`, JSON emitted and parsed by hand.
//!
//! `--check` compares the fresh measurement against the committed
//! baseline at the `--out` path instead of overwriting it, and fails if
//! throughput regressed more than 20% (per matrix cell in `run` mode,
//! on parallel runs/s in `sweep` mode). CI runs this to catch perf
//! regressions the way the test suite catches behavioral ones. Cells
//! more than 20% *above* baseline also fail, with a distinct
//! "re-record baselines" notice: a perf PR must commit fresh BENCH_*
//! files, or the regression floor silently goes stale.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use kloc_policy::PolicyKind;
use kloc_sim::engine::{self, Platform, RunConfig};
use kloc_sim::report::{f2, Table};
use kloc_sim::Runner;
use kloc_workloads::{Scale, WorkloadKind};

fn usage() -> ExitCode {
    eprintln!(
        "usage: perfbench [--mode sweep|run] [--scale tiny|small|large|huge] \
         [--jobs N] [--reps N] [--shards N] [--out PATH] [--check]"
    );
    ExitCode::FAILURE
}

/// Throughput loss beyond which `--check` fails the run.
const CHECK_TOLERANCE: f64 = 0.20;

/// Throughput *gain* beyond which `--check` flags the committed
/// baseline as stale (same notice either way: re-record BENCH_*.json).
const STALE_TOLERANCE: f64 = 0.20;

/// Outcome of one `--check` cell comparison.
#[derive(PartialEq, Clone, Copy)]
enum CellCheck {
    Ok,
    Regressed,
    /// Faster than the committed number by more than [`STALE_TOLERANCE`]
    /// — the baseline no longer reflects the code and must be
    /// re-recorded.
    Stale,
}

/// The sweep-mode matrix: a small fig6-style cross product whose runs
/// vary widely in cost — exactly the imbalance work stealing absorbs.
fn sweep(scale: &Scale) -> Vec<RunConfig> {
    let policies = [
        PolicyKind::AllSlow,
        PolicyKind::Naive,
        PolicyKind::Nimble,
        PolicyKind::NimblePlusPlus,
        PolicyKind::Kloc,
    ];
    let workloads = [WorkloadKind::RocksDb, WorkloadKind::Redis];
    let mut configs = Vec::new();
    for cap_shift in [0u64, 1] {
        for ratio in [8u64, 2] {
            for policy in policies {
                for w in workloads {
                    configs.push(RunConfig {
                        workload: w,
                        policy,
                        scale: scale.clone(),
                        platform: Platform::TwoTier {
                            fast_bytes: scale.fast_bytes >> cap_shift,
                            bw_ratio: ratio,
                        },
                        kernel_params: None,
                        faults: None,
                        budgets: Vec::new(),
                    });
                }
            }
        }
    }
    configs
}

/// The run-mode matrix: policies whose per-tick bookkeeping differs
/// (scan-based Nimble vs event-driven KLOCs) against the two most
/// knode-heavy workloads. Filebench opens a file per operation, so it
/// exercises knode creation, aging, and cold-set selection hardest.
fn run_matrix(scales: &[Scale]) -> Vec<RunConfig> {
    let policies = [
        PolicyKind::Nimble,
        PolicyKind::NimblePlusPlus,
        PolicyKind::KlocNoMigration,
        PolicyKind::Kloc,
    ];
    let workloads = [WorkloadKind::Filebench, WorkloadKind::RocksDb];
    let mut configs = Vec::new();
    for scale in scales {
        for w in workloads {
            for policy in policies {
                configs.push(RunConfig {
                    workload: w,
                    policy,
                    scale: scale.clone(),
                    platform: Platform::TwoTier {
                        fast_bytes: scale.fast_bytes,
                        bw_ratio: 8,
                    },
                    kernel_params: None,
                    faults: None,
                    budgets: Vec::new(),
                });
            }
        }
    }
    configs
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Extracts `"key": "value"` from one line of our own JSON output.
/// (The benchmark files are emitted by this binary, so the line-oriented
/// shape is stable; no general JSON parser needed.)
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Extracts `"key": <number>` from one line of our own JSON output.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Per-cell throughput baselines from a committed `BENCH_run.json`:
/// (policy, workload, scale) -> ops_per_sec.
fn run_baseline(json: &str) -> Vec<((String, String, String), f64)> {
    json.lines()
        .filter_map(|line| {
            let policy = field_str(line, "policy")?;
            let workload = field_str(line, "workload")?;
            let scale = field_str(line, "scale")?;
            let ops_per_sec = field_num(line, "ops_per_sec")?;
            Some((
                (policy.to_owned(), workload.to_owned(), scale.to_owned()),
                ops_per_sec,
            ))
        })
        .collect()
}

/// Compares one cell: regression beyond [`CHECK_TOLERANCE`] below the
/// committed number fails; improvement beyond [`STALE_TOLERANCE`] above
/// it flags a stale baseline.
fn check_cell(label: &str, committed: f64, fresh: f64) -> CellCheck {
    let floor = committed * (1.0 - CHECK_TOLERANCE);
    let ceiling = committed * (1.0 + STALE_TOLERANCE);
    if fresh < floor {
        eprintln!(
            "[perfbench] CHECK FAIL {label}: {fresh:.0} vs committed {committed:.0} \
             (floor {floor:.0}, -{:.1}%)",
            100.0 * (1.0 - fresh / committed)
        );
        CellCheck::Regressed
    } else if fresh > ceiling {
        eprintln!(
            "[perfbench] CHECK STALE {label}: {fresh:.0} vs committed {committed:.0} \
             (ceiling {ceiling:.0}, +{:.1}%)",
            100.0 * (fresh / committed - 1.0)
        );
        CellCheck::Stale
    } else {
        eprintln!(
            "[perfbench] check ok {label}: {fresh:.0} vs committed {committed:.0} \
             ({:+.1}%)",
            100.0 * (fresh / committed - 1.0)
        );
        CellCheck::Ok
    }
}

/// Folds cell outcomes into the process exit code, emitting the
/// distinct stale-baseline notice when improvements (and no
/// regressions) tripped the check.
fn check_verdict(outcomes: &[CellCheck]) -> ExitCode {
    if outcomes.contains(&CellCheck::Regressed) {
        return ExitCode::FAILURE;
    }
    let stale = outcomes.iter().filter(|&&c| c == CellCheck::Stale).count();
    if stale > 0 {
        eprintln!(
            "[perfbench] NOTICE: {stale} cell(s) ran >{:.0}% above the committed \
             baseline — re-record baselines (run perfbench without --check and \
             commit the refreshed BENCH_*.json)",
            100.0 * STALE_TOLERANCE
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

struct Args {
    mode: Mode,
    scale: Option<Scale>,
    jobs: usize,
    reps: usize,
    out: Option<String>,
    check: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum Mode {
    Sweep,
    Run,
}

fn parse_args() -> Result<Args, ()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut parsed = Args {
        mode: Mode::Sweep,
        scale: None,
        jobs: Runner::auto().jobs(),
        reps: 3,
        out: None,
        check: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--mode" => match args.get(i + 1).map(String::as_str) {
                Some("sweep") => parsed.mode = Mode::Sweep,
                Some("run") => parsed.mode = Mode::Run,
                _ => return Err(()),
            },
            "--scale" => match args.get(i + 1).map(String::as_str) {
                Some("tiny") => parsed.scale = Some(Scale::tiny()),
                Some("small") => parsed.scale = Some(Scale::small()),
                Some("large") => parsed.scale = Some(Scale::large()),
                Some("huge") => parsed.scale = Some(Scale::huge()),
                _ => return Err(()),
            },
            "--jobs" => match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => parsed.jobs = n,
                _ => return Err(()),
            },
            "--reps" => match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => parsed.reps = n,
                _ => return Err(()),
            },
            "--shards" => match args.get(i + 1).and_then(|s| s.parse::<u32>().ok()) {
                Some(n) if n >= 1 => engine::set_default_shards(n),
                _ => return Err(()),
            },
            "--out" => match args.get(i + 1) {
                Some(path) => parsed.out = Some(path.clone()),
                None => return Err(()),
            },
            "--check" => {
                parsed.check = true;
                i += 1;
                continue;
            }
            _ => return Err(()),
        }
        i += 2;
    }
    Ok(parsed)
}

fn main() -> ExitCode {
    let Ok(args) = parse_args() else {
        return usage();
    };
    match args.mode {
        Mode::Sweep => bench_sweep(&args),
        Mode::Run => bench_run(&args),
    }
}

fn bench_sweep(args: &Args) -> ExitCode {
    let scale = args.scale.clone().unwrap_or_else(Scale::small);
    let jobs = args.jobs;
    let out = args.out.clone().unwrap_or("BENCH_sweep.json".to_owned());

    let configs = sweep(&scale);
    let n = configs.len();
    eprintln!(
        "[perfbench] sweep: {} runs at scale {}, {} worker(s)",
        n, scale.label, jobs
    );

    // Warm-up: touch every code path once so first-run effects (lazy
    // page faults, allocator growth) don't bias the serial leg.
    let warm = Runner::serial()
        .run_all(configs.clone())
        .expect("warm-up sweep");

    let t0 = Instant::now();
    let serial = Runner::serial()
        .run_all(configs.clone())
        .expect("serial sweep");
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let parallel = Runner::new(jobs).run_all(configs).expect("parallel sweep");
    let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;

    if parallel != serial || warm != serial {
        eprintln!("[perfbench] FAIL: parallel reports differ from serial");
        return ExitCode::FAILURE;
    }

    let speedup = serial_ms / parallel_ms.max(1e-9);
    let serial_rps = n as f64 / (serial_ms / 1e3).max(1e-9);
    let parallel_rps = n as f64 / (parallel_ms / 1e3).max(1e-9);
    eprintln!(
        "[perfbench] serial {serial_ms:.1} ms ({serial_rps:.2} runs/s), \
         parallel {parallel_ms:.1} ms ({parallel_rps:.2} runs/s), \
         speedup {speedup:.2}x"
    );

    if args.check {
        let Ok(baseline) = std::fs::read_to_string(&out) else {
            eprintln!("[perfbench] CHECK FAIL: no committed baseline at {out}");
            return ExitCode::FAILURE;
        };
        let Some(committed) = baseline
            .lines()
            .find_map(|l| field_num(l, "parallel_runs_per_sec"))
        else {
            eprintln!("[perfbench] CHECK FAIL: {out} has no parallel_runs_per_sec");
            return ExitCode::FAILURE;
        };
        let outcome = check_cell("sweep parallel runs/s", committed, parallel_rps);
        return check_verdict(&[outcome]);
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"sweep\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", json_escape(&scale.label));
    let _ = writeln!(json, "  \"runs\": {n},");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"serial_ms\": {serial_ms:.3},");
    let _ = writeln!(json, "  \"parallel_ms\": {parallel_ms:.3},");
    let _ = writeln!(json, "  \"serial_runs_per_sec\": {serial_rps:.3},");
    let _ = writeln!(json, "  \"parallel_runs_per_sec\": {parallel_rps:.3},");
    let _ = writeln!(json, "  \"speedup_vs_serial\": {speedup:.3},");
    let _ = writeln!(json, "  \"reports_identical\": true");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("[perfbench] cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("[perfbench] wrote {out}");
    ExitCode::SUCCESS
}

/// One single-run measurement: best and mean wall time over `reps`
/// repetitions of a deterministic run.
struct RunSample {
    policy: String,
    workload: String,
    scale: String,
    ops: u64,
    virt_elapsed_ns: u64,
    best_ms: f64,
    mean_ms: f64,
}

fn bench_run(args: &Args) -> ExitCode {
    let scales: Vec<Scale> = match &args.scale {
        Some(s) => vec![s.clone()],
        None => vec![Scale::small(), Scale::large(), Scale::huge()],
    };
    let out = args.out.clone().unwrap_or("BENCH_run.json".to_owned());
    let configs = run_matrix(&scales);
    eprintln!(
        "[perfbench] run: {} configs x {} reps (scales: {})",
        configs.len(),
        args.reps,
        scales
            .iter()
            .map(|s| s.label.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Warm-up pass: first-touch effects stay out of the measurement,
    // and each report doubles as the determinism reference its timed
    // reps must reproduce.
    let references: Vec<_> = configs
        .iter()
        .map(|config| engine::run(config).expect("bench run"))
        .collect();
    // Rep-major timing: every rep sweeps the whole matrix once, so a
    // transient burst of machine noise lands on at most one rep of each
    // cell instead of on every rep of whichever cell it overlapped.
    // `best_ms` (the min) is unchanged semantically but far harder for
    // a noisy co-tenant to poison.
    let mut best_ms = vec![f64::INFINITY; configs.len()];
    let mut total_ms = vec![0.0; configs.len()];
    for _ in 0..args.reps {
        for (i, config) in configs.iter().enumerate() {
            let t = Instant::now();
            let report = engine::run(config).expect("bench run");
            let ms = t.elapsed().as_secs_f64() * 1e3;
            if report != references[i] {
                eprintln!(
                    "[perfbench] FAIL: nondeterministic report for {}/{}/{}",
                    config.policy.label(),
                    config.workload.label(),
                    config.scale.label
                );
                return ExitCode::FAILURE;
            }
            best_ms[i] = best_ms[i].min(ms);
            total_ms[i] += ms;
        }
    }
    let mut samples = Vec::new();
    for (i, config) in configs.iter().enumerate() {
        let sample = RunSample {
            policy: config.policy.label().to_owned(),
            workload: config.workload.label().to_owned(),
            scale: config.scale.label.clone(),
            ops: references[i].ops,
            virt_elapsed_ns: references[i].elapsed.as_nanos(),
            best_ms: best_ms[i],
            mean_ms: total_ms[i] / args.reps as f64,
        };
        eprintln!(
            "[perfbench]   {:>16} {:>9} {:>5}: best {:8.1} ms ({:>9.0} ops/s)",
            sample.policy,
            sample.workload,
            sample.scale,
            sample.best_ms,
            sample.ops_per_sec()
        );
        samples.push(sample);
    }

    if args.check {
        let Ok(baseline) = std::fs::read_to_string(&out) else {
            eprintln!("[perfbench] CHECK FAIL: no committed baseline at {out}");
            return ExitCode::FAILURE;
        };
        let committed = run_baseline(&baseline);
        if committed.is_empty() {
            eprintln!("[perfbench] CHECK FAIL: {out} has no run cells");
            return ExitCode::FAILURE;
        }
        let mut outcomes = Vec::new();
        for s in &samples {
            let key = (s.policy.clone(), s.workload.clone(), s.scale.clone());
            let Some((_, base)) = committed.iter().find(|(k, _)| *k == key) else {
                // New matrix cells (e.g. a fresh scale) have no baseline
                // yet; they start being enforced once recorded.
                continue;
            };
            let label = format!("{}/{}/{}", s.policy, s.workload, s.scale);
            outcomes.push(check_cell(&label, *base, s.ops_per_sec()));
        }
        eprintln!(
            "[perfbench] check compared {}/{} cells against {out}",
            outcomes.len(),
            samples.len()
        );
        if outcomes.is_empty() {
            return ExitCode::FAILURE;
        }
        return check_verdict(&outcomes);
    }

    let mut table = Table::new(
        "perfbench --mode run (wall-clock per single run)",
        &["policy", "workload", "scale", "best ms", "kops/s"],
    );
    for s in &samples {
        table.row(vec![
            s.policy.clone(),
            s.workload.clone(),
            s.scale.clone(),
            f2(s.best_ms),
            f2(s.ops_per_sec() / 1e3),
        ]);
    }
    println!("{table}");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"run\",");
    let _ = writeln!(json, "  \"reps\": {},", args.reps);
    let _ = writeln!(json, "  \"reports_identical\": true,");
    let _ = writeln!(json, "  \"runs\": [");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"policy\": \"{}\", \"workload\": \"{}\", \"scale\": \"{}\", \
             \"ops\": {}, \"virt_elapsed_ns\": {}, \"best_ms\": {:.3}, \
             \"mean_ms\": {:.3}, \"ops_per_sec\": {:.1}}}{}",
            json_escape(&s.policy),
            json_escape(&s.workload),
            json_escape(&s.scale),
            s.ops,
            s.virt_elapsed_ns,
            s.best_ms,
            s.mean_ms,
            s.ops_per_sec(),
            comma
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("[perfbench] cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("[perfbench] wrote {out}");
    ExitCode::SUCCESS
}

impl RunSample {
    /// Simulated operations executed per wall-clock second (best rep).
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / (self.best_ms / 1e3).max(1e-9)
    }
}
