//! `perfbench` — wall-clock benchmark of the parallel sweep runner.
//!
//! Times one fixed fig6-style sweep (capacity x ratio x policy x
//! workload) executed serially and then with the parallel runner, checks
//! the reports are identical, and writes `BENCH_sweep.json`:
//!
//! ```text
//! perfbench [--scale tiny|small] [--jobs N] [--out PATH]
//! ```
//!
//! Defaults: `--scale small`, `--jobs` = hardware threads, `--out
//! BENCH_sweep.json`. Exits non-zero if the parallel reports differ from
//! serial. Dependency-free: timing via `std::time::Instant`, JSON
//! emitted by hand.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use kloc_policy::PolicyKind;
use kloc_sim::engine::{Platform, RunConfig};
use kloc_sim::Runner;
use kloc_workloads::{Scale, WorkloadKind};

fn usage() -> ExitCode {
    eprintln!("usage: perfbench [--scale tiny|small] [--jobs N] [--out PATH]");
    ExitCode::FAILURE
}

/// The benchmark matrix: a small fig6-style cross product whose runs
/// vary widely in cost — exactly the imbalance work stealing absorbs.
fn sweep(scale: &Scale) -> Vec<RunConfig> {
    let policies = [
        PolicyKind::AllSlow,
        PolicyKind::Naive,
        PolicyKind::Nimble,
        PolicyKind::NimblePlusPlus,
        PolicyKind::Kloc,
    ];
    let workloads = [WorkloadKind::RocksDb, WorkloadKind::Redis];
    let mut configs = Vec::new();
    for cap_shift in [0u64, 1] {
        for ratio in [8u64, 2] {
            for policy in policies {
                for w in workloads {
                    configs.push(RunConfig {
                        workload: w,
                        policy,
                        scale: scale.clone(),
                        platform: Platform::TwoTier {
                            fast_bytes: scale.fast_bytes >> cap_shift,
                            bw_ratio: ratio,
                        },
                        kernel_params: None,
                    });
                }
            }
        }
    }
    configs
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::small();
    let mut jobs = Runner::auto().jobs();
    let mut out = String::from("BENCH_sweep.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => match args.get(i + 1).map(String::as_str) {
                Some("tiny") => scale = Scale::tiny(),
                Some("small") => scale = Scale::small(),
                _ => return usage(),
            },
            "--jobs" => match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => return usage(),
            },
            "--out" => match args.get(i + 1) {
                Some(path) => out = path.clone(),
                None => return usage(),
            },
            _ => return usage(),
        }
        i += 2;
    }

    let configs = sweep(&scale);
    let n = configs.len();
    eprintln!(
        "[perfbench] {} runs at scale {}, {} worker(s)",
        n, scale.label, jobs
    );

    // Warm-up: touch every code path once so first-run effects (lazy
    // page faults, allocator growth) don't bias the serial leg.
    let warm = Runner::serial()
        .run_all(configs.clone())
        .expect("warm-up sweep");

    let t0 = Instant::now();
    let serial = Runner::serial()
        .run_all(configs.clone())
        .expect("serial sweep");
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let parallel = Runner::new(jobs).run_all(configs).expect("parallel sweep");
    let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;

    if parallel != serial || warm != serial {
        eprintln!("[perfbench] FAIL: parallel reports differ from serial");
        return ExitCode::FAILURE;
    }

    let speedup = serial_ms / parallel_ms.max(1e-9);
    let serial_rps = n as f64 / (serial_ms / 1e3).max(1e-9);
    let parallel_rps = n as f64 / (parallel_ms / 1e3).max(1e-9);
    eprintln!(
        "[perfbench] serial {serial_ms:.1} ms ({serial_rps:.2} runs/s), \
         parallel {parallel_ms:.1} ms ({parallel_rps:.2} runs/s), \
         speedup {speedup:.2}x"
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"sweep\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", json_escape(&scale.label));
    let _ = writeln!(json, "  \"runs\": {n},");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"serial_ms\": {serial_ms:.3},");
    let _ = writeln!(json, "  \"parallel_ms\": {parallel_ms:.3},");
    let _ = writeln!(json, "  \"serial_runs_per_sec\": {serial_rps:.3},");
    let _ = writeln!(json, "  \"parallel_runs_per_sec\": {parallel_rps:.3},");
    let _ = writeln!(json, "  \"speedup_vs_serial\": {speedup:.3},");
    let _ = writeln!(json, "  \"reports_identical\": true");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("[perfbench] cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("[perfbench] wrote {out}");
    ExitCode::SUCCESS
}
