//! `ktrace` analysis: deterministic aggregation over `kloc-trace` JSONL
//! documents.
//!
//! The `ktrace` binary is a thin CLI over this module; everything here
//! is pure (events in, text out) so the aggregation math is unit
//! testable and reusable. All intermediate state lives in `BTreeMap`s,
//! so rendered output is a deterministic function of the trace bytes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use kloc_trace::{Counters, Event, SCHEMA};

/// Splits a session trace into per-run slices at `run_begin` markers.
/// Events before the first marker (a headerless fragment) form their own
/// leading run.
pub fn split_runs(events: &[Event]) -> Vec<&[Event]> {
    let mut starts: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, Event::RunBegin { .. }))
        .map(|(i, _)| i)
        .collect();
    if events.is_empty() {
        return Vec::new();
    }
    if starts.first() != Some(&0) {
        starts.insert(0, 0);
    }
    starts
        .iter()
        .enumerate()
        .map(|(i, &lo)| {
            let hi = starts.get(i + 1).copied().unwrap_or(events.len());
            &events[lo..hi]
        })
        .collect()
}

/// Headline facts about one run's slice of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Workload label from `run_begin` (`?` if the slice is headerless).
    pub workload: String,
    /// Policy label from `run_begin`.
    pub policy: String,
    /// Platform descriptor from `run_begin`.
    pub platform: String,
    /// Measured operations (from `run_end`, falling back to `run_begin`).
    pub ops: u64,
    /// Final virtual clock of the run in nanoseconds.
    pub end_t: u64,
    /// Event count per kind.
    pub by_kind: BTreeMap<&'static str, u64>,
}

/// Summarizes one run slice.
pub fn summarize(run: &[Event]) -> RunSummary {
    let mut s = RunSummary {
        workload: "?".to_owned(),
        policy: "?".to_owned(),
        platform: "?".to_owned(),
        ops: 0,
        end_t: run.last().map_or(0, Event::t),
        by_kind: BTreeMap::new(),
    };
    for ev in run {
        *s.by_kind.entry(ev.kind()).or_default() += 1;
        match ev {
            Event::RunBegin {
                workload,
                policy,
                platform,
                ops,
                ..
            } => {
                s.workload.clone_from(workload);
                s.policy.clone_from(policy);
                s.platform.clone_from(platform);
                if s.ops == 0 {
                    s.ops = *ops;
                }
            }
            Event::RunEnd { t, ops } => {
                s.ops = *ops;
                s.end_t = (*t).max(s.end_t);
            }
            _ => {}
        }
    }
    s
}

/// Folds `attrib` events into total nanoseconds per scope stack —
/// flamegraph-fold format: each entry renders as one `stack ns` line.
pub fn fold_attrib(events: &[Event]) -> BTreeMap<String, u64> {
    let mut fold: BTreeMap<String, u64> = BTreeMap::new();
    for ev in events {
        if let Event::Attrib { stack, ns, .. } = ev {
            *fold.entry(stack.clone()).or_default() += ns;
        }
    }
    fold
}

/// Sums every `counters` event into run/session totals.
pub fn counter_totals(events: &[Event]) -> Counters {
    let mut total = Counters::default();
    for ev in events {
        if let Event::Counters { c, .. } = ev {
            total.add(c);
        }
    }
    total
}

/// The log2 histogram bucket of a value: bucket 0 holds only 0, bucket
/// `b >= 1` holds `[2^(b-1), 2^b)`.
pub fn log2_bucket(v: u64) -> u32 {
    match v {
        0 => 0,
        _ => v.ilog2() + 1,
    }
}

/// Human label for a [`log2_bucket`] index.
pub fn bucket_label(b: u32) -> String {
    match b {
        0 => "0".to_owned(),
        _ => format!("{}..{}", 1u64 << (b - 1), (1u64 << b) - 1),
    }
}

/// Builds a log2 histogram (bucket index -> count) over `values`.
pub fn log2_hist(values: impl IntoIterator<Item = u64>) -> BTreeMap<u32, u64> {
    let mut hist: BTreeMap<u32, u64> = BTreeMap::new();
    for v in values {
        *hist.entry(log2_bucket(v)).or_default() += 1;
    }
    hist
}

/// One entry of a per-KLOC timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEntry {
    /// Virtual nanoseconds since run start.
    pub t: u64,
    /// What happened, rendered (`created`, `promote/enmasse moved=…`).
    pub what: String,
}

/// Builds per-KLOC (per-inode) tier-residency timelines from `knode`
/// lifecycle events and `kloc_migrate` decisions.
pub fn timelines(events: &[Event]) -> BTreeMap<u64, Vec<TimelineEntry>> {
    let mut out: BTreeMap<u64, Vec<TimelineEntry>> = BTreeMap::new();
    for ev in events {
        match ev {
            Event::Knode { t, ino, state } => {
                out.entry(*ino).or_default().push(TimelineEntry {
                    t: *t,
                    what: state.clone(),
                });
            }
            Event::KlocMigrate {
                t,
                ino,
                dir,
                how,
                epoch,
                age,
                moved,
                fast,
                slow,
            } => {
                out.entry(*ino).or_default().push(TimelineEntry {
                    t: *t,
                    what: format!(
                        "{dir}/{how} moved={moved} epoch={epoch} age={age} -> fast={fast} slow={slow}"
                    ),
                });
            }
            _ => {}
        }
    }
    out
}

/// Renders the per-run summary of a whole session trace.
pub fn render_summary(events: &[Event]) -> String {
    let mut out = String::new();
    let runs = split_runs(events);
    let _ = writeln!(out, "{} event(s), {} run(s)", events.len(), runs.len());
    for (i, run) in runs.iter().enumerate() {
        let s = summarize(run);
        let _ = writeln!(
            out,
            "\nrun {i}: {} / {} on {} ({} ops, {} ns virtual)",
            s.workload, s.policy, s.platform, s.ops, s.end_t
        );
        for (kind, count) in &s.by_kind {
            let _ = writeln!(out, "  {kind:<16} {count:>8}");
        }
    }
    out
}

/// Renders per-KLOC timelines, optionally restricted to one inode.
pub fn render_timeline(events: &[Event], only_ino: Option<u64>) -> String {
    let mut out = String::new();
    for (i, run) in split_runs(events).iter().enumerate() {
        let s = summarize(run);
        let _ = writeln!(out, "run {i}: {} / {}", s.workload, s.policy);
        let lines = timelines(run);
        let mut shown = 0usize;
        for (ino, entries) in &lines {
            if only_ino.is_some_and(|want| want != *ino) {
                continue;
            }
            shown += 1;
            let _ = writeln!(out, "  kloc ino={ino}");
            for e in entries {
                let _ = writeln!(out, "    t={:<14} {}", e.t, e.what);
            }
        }
        if shown == 0 {
            let _ = writeln!(out, "  (no knode events)");
        }
    }
    out
}

/// Renders the session-wide virtual-time attribution in flamegraph fold
/// format (`stack ns`, one line per scope stack, sorted by stack).
pub fn render_attrib(events: &[Event]) -> String {
    let mut out = String::new();
    for (stack, ns) in fold_attrib(events) {
        let _ = writeln!(out, "{stack} {ns}");
    }
    out
}

/// Renders session-wide counter totals plus log2 histograms of per-event
/// migration costs and writeback batch sizes.
pub fn render_rollup(events: &[Event]) -> String {
    let mut out = String::new();
    let totals = counter_totals(events);
    let _ = writeln!(out, "counter totals:");
    for ((name, _), value) in kloc_trace::COUNTER_FIELDS.iter().zip(totals.values()) {
        let _ = writeln!(out, "  {name:<16} {value:>10}");
    }
    let costs = events.iter().filter_map(|e| match e {
        Event::Migrate { cost, .. } => Some(*cost),
        _ => None,
    });
    render_hist(&mut out, "migrate cost (ns)", &log2_hist(costs));
    let batches = events.iter().filter_map(|e| match e {
        Event::Writeback { pages, .. } => Some(*pages),
        _ => None,
    });
    render_hist(&mut out, "writeback batch (pages)", &log2_hist(batches));
    out.push_str(&render_faults(events));
    out.push_str(&render_degradation(events));
    out
}

/// Renders the fault-injection rollup (kfault runs): injected faults
/// by class, blk-mq retries with a backoff histogram, and crash
/// recoveries with replay totals. Empty for fault-free traces, so the
/// rollup of an ordinary run is unchanged by kfault builds.
pub fn render_faults(events: &[Event]) -> String {
    let mut out = String::new();
    let mut faults: BTreeMap<&str, u64> = BTreeMap::new();
    let mut retries = 0u64;
    let mut backoffs = Vec::new();
    let (mut recoveries, mut replayed, mut torn) = (0u64, 0u64, 0u64);
    for ev in events {
        match ev {
            Event::Fault { kind, .. } => *faults.entry(kind.as_str()).or_default() += 1,
            Event::Retry { backoff, .. } => {
                retries += 1;
                backoffs.push(*backoff);
            }
            Event::Recovery {
                replayed: r,
                torn: tn,
                ..
            } => {
                recoveries += 1;
                replayed += r;
                torn += tn;
            }
            _ => {}
        }
    }
    if faults.is_empty() && retries == 0 && recoveries == 0 {
        return out;
    }
    let _ = writeln!(out, "\nfault injection:");
    for (kind, count) in &faults {
        let label = format!("fault/{kind}");
        let _ = writeln!(out, "  {label:<16} {count:>10}");
    }
    let _ = writeln!(out, "  {:<16} {retries:>10}", "retries");
    if recoveries > 0 {
        let _ = writeln!(
            out,
            "  {:<16} {recoveries:>10} (replayed {replayed}, torn {torn})",
            "recoveries"
        );
    }
    if retries > 0 {
        render_hist(&mut out, "retry backoff (ns)", &log2_hist(backoffs));
    }
    out
}

/// Renders the graceful-degradation rollup (DESIGN.md §13): tier-drain
/// volume per tier, QoS preemptions per class and action, and the
/// budget-resize timeline. Empty when the trace carries none of the
/// three event kinds, so faultless resize-free rollups are unchanged.
pub fn render_degradation(events: &[Event]) -> String {
    let mut out = String::new();
    // tier -> (passes, moved, retries, cost ns).
    let mut drains: BTreeMap<u64, (u64, u64, u64, u64)> = BTreeMap::new();
    // (qos, action) -> (events, pages).
    let mut preempts: BTreeMap<(&str, &str), (u64, u64)> = BTreeMap::new();
    let mut resizes: Vec<String> = Vec::new();
    for ev in events {
        match ev {
            Event::Drain {
                tier,
                moved,
                retries,
                cost,
                ..
            } => {
                let e = drains.entry(*tier).or_default();
                e.0 += 1;
                e.1 += moved;
                e.2 += retries;
                e.3 += cost;
            }
            Event::Degrade {
                qos, action, pages, ..
            } => {
                let e = preempts.entry((qos.as_str(), action.as_str())).or_default();
                e.0 += 1;
                e.1 += pages;
            }
            Event::BudgetResize {
                t,
                tenant,
                kind,
                from,
                to,
            } => {
                let cap = |v: u64| match v {
                    0 => "uncapped".to_owned(),
                    _ => v.to_string(),
                };
                resizes.push(format!(
                    "  t={t:<14} tenant {tenant} {kind}: {} -> {}",
                    cap(*from),
                    cap(*to)
                ));
            }
            _ => {}
        }
    }
    if drains.is_empty() && preempts.is_empty() && resizes.is_empty() {
        return out;
    }
    let _ = writeln!(out, "\ngraceful degradation:");
    for (tier, (passes, moved, retries, cost)) in &drains {
        let label = format!("drain/tier{tier}");
        let _ = writeln!(
            out,
            "  {label:<16} {moved:>10} frame(s) in {passes} pass(es), {retries} retries, {cost} ns"
        );
    }
    for ((qos, action), (events, pages)) in &preempts {
        let label = format!("{qos}/{action}");
        let _ = writeln!(out, "  {label:<22} {events:>6} preemption(s), {pages} page(s)");
    }
    if !resizes.is_empty() {
        let _ = writeln!(out, "  budget resizes:");
        for line in &resizes {
            let _ = writeln!(out, "  {line}");
        }
    }
    out
}

fn render_hist(out: &mut String, title: &str, hist: &BTreeMap<u32, u64>) {
    let _ = writeln!(out, "\n{title}:");
    if hist.is_empty() {
        let _ = writeln!(out, "  (no samples)");
        return;
    }
    let max = hist.values().copied().max().unwrap_or(1).max(1);
    for (&bucket, &count) in hist {
        let bar = "#".repeat(((count * 40).div_ceil(max)) as usize);
        let _ = writeln!(out, "  {:>24} {count:>8} {bar}", bucket_label(bucket));
    }
}

/// Renders the event schema reference (the same table DESIGN.md §7
/// carries) from [`kloc_trace::SCHEMA`].
pub fn render_schema() -> String {
    let mut out = String::new();
    for spec in SCHEMA {
        let _ = writeln!(out, "{}  ({})", spec.kind, spec.site);
        for (name, units) in spec.fields {
            let _ = writeln!(out, "  {name:<16} {units}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Event> {
        vec![
            Event::RunBegin {
                t: 0,
                workload: "RocksDB".to_owned(),
                policy: "KLOCs".to_owned(),
                platform: "two_tier:fast=1:bw=8".to_owned(),
                seed: 1,
                ops: 10,
            },
            Event::Attrib {
                t: 5,
                stack: "measured;write".to_owned(),
                ns: 100,
            },
            Event::Counters {
                t: 5,
                c: Counters {
                    syscalls: 4,
                    pc_hits: 2,
                    ..Counters::default()
                },
            },
            Event::Knode {
                t: 6,
                ino: 3,
                state: "created".to_owned(),
            },
            Event::KlocMigrate {
                t: 7,
                ino: 3,
                dir: "demote".to_owned(),
                how: "enmasse".to_owned(),
                epoch: 2,
                age: 1,
                moved: 5,
                fast: 0,
                slow: 5,
            },
            Event::Migrate {
                t: 7,
                frame: 9,
                from: 0,
                to: 1,
                kind: "page-cache".to_owned(),
                cost: 640,
            },
            Event::RunEnd { t: 9, ops: 10 },
            Event::RunBegin {
                t: 0,
                workload: "Redis".to_owned(),
                policy: "Naive".to_owned(),
                platform: "two_tier:fast=1:bw=8".to_owned(),
                seed: 1,
                ops: 20,
            },
            Event::Attrib {
                t: 3,
                stack: "measured;write".to_owned(),
                ns: 50,
            },
            Event::Counters {
                t: 3,
                c: Counters {
                    syscalls: 6,
                    ..Counters::default()
                },
            },
            Event::RunEnd { t: 4, ops: 20 },
        ]
    }

    #[test]
    fn splits_runs_on_markers() {
        let events = sample();
        let runs = split_runs(&events);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].len(), 7);
        assert_eq!(runs[1].len(), 4);
        assert!(split_runs(&[]).is_empty());
        // A headerless fragment still forms a run.
        let frag = vec![Event::RunEnd { t: 1, ops: 1 }];
        assert_eq!(split_runs(&frag).len(), 1);
    }

    #[test]
    fn summary_reads_header_and_footer() {
        let events = sample();
        let s = summarize(split_runs(&events)[0]);
        assert_eq!(s.workload, "RocksDB");
        assert_eq!(s.policy, "KLOCs");
        assert_eq!(s.ops, 10);
        assert_eq!(s.end_t, 9);
        assert_eq!(s.by_kind["knode"], 1);
        assert_eq!(s.by_kind["run_begin"], 1);
    }

    #[test]
    fn attrib_folds_across_runs() {
        let fold = fold_attrib(&sample());
        assert_eq!(fold.len(), 1);
        assert_eq!(fold["measured;write"], 150);
    }

    #[test]
    fn counters_sum_across_runs() {
        let t = counter_totals(&sample());
        assert_eq!(t.syscalls, 10);
        assert_eq!(t.pc_hits, 2);
        assert_eq!(t.frame_allocs, 0);
    }

    #[test]
    fn log2_buckets_partition_the_range() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(u64::MAX), 64);
        assert_eq!(bucket_label(0), "0");
        assert_eq!(bucket_label(1), "1..1");
        assert_eq!(bucket_label(3), "4..7");
        let hist = log2_hist([0, 1, 2, 3, 4]);
        assert_eq!(hist[&0], 1);
        assert_eq!(hist[&1], 1);
        assert_eq!(hist[&2], 2);
        assert_eq!(hist[&3], 1);
    }

    #[test]
    fn timeline_merges_lifecycle_and_migrations() {
        let tl = timelines(split_runs(&sample())[0]);
        assert_eq!(tl.len(), 1);
        let entries = &tl[&3];
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].what, "created");
        assert!(entries[1].what.starts_with("demote/enmasse moved=5"));
        assert!(entries[1].what.ends_with("fast=0 slow=5"));
    }

    #[test]
    fn renderers_are_deterministic_and_nonempty() {
        let events = sample();
        let a = render_summary(&events);
        assert_eq!(a, render_summary(&events));
        assert!(a.contains("RocksDB"));
        assert!(render_attrib(&events).contains("measured;write 150"));
        let rollup = render_rollup(&events);
        assert!(rollup.contains("syscalls"));
        assert!(rollup.contains("migrate cost"));
        let schema = render_schema();
        for kind in Event::ALL_KINDS {
            assert!(schema.contains(kind), "schema output missing {kind}");
        }
        assert!(render_timeline(&events, Some(3)).contains("kloc ino=3"));
        assert!(render_timeline(&events, Some(99)).contains("no knode events"));
    }

    #[test]
    fn fault_rollup_appears_only_with_fault_events() {
        // Fault-free traces render no fault section at all.
        assert!(render_faults(&sample()).is_empty());
        assert!(!render_rollup(&sample()).contains("fault injection"));
        let events = vec![
            Event::Fault {
                t: 1,
                kind: "disk".to_owned(),
                info: "write".to_owned(),
            },
            Event::Fault {
                t: 2,
                kind: "disk".to_owned(),
                info: "fsync".to_owned(),
            },
            Event::Retry {
                t: 3,
                op: "write".to_owned(),
                attempt: 1,
                backoff: 50_000,
            },
            Event::Recovery {
                t: 4,
                replayed: 4,
                torn: 1,
                pages: 9,
            },
        ];
        let r = render_faults(&events);
        assert!(r.contains("fault/disk"));
        assert!(r.contains("retries"));
        assert!(r.contains("(replayed 4, torn 1)"));
        assert!(r.contains("retry backoff (ns)"));
        assert!(render_rollup(&events).contains("fault injection:"));
    }

    #[test]
    fn degradation_rollup_appears_only_with_degradation_events() {
        // Faultless resize-free traces render no degradation section.
        assert!(render_degradation(&sample()).is_empty());
        assert!(!render_rollup(&sample()).contains("graceful degradation"));
        let events = vec![
            Event::Drain {
                t: 10,
                tier: 0,
                moved: 5,
                left: 2,
                retries: 1,
                cost: 3200,
            },
            Event::Drain {
                t: 20,
                tier: 0,
                moved: 2,
                left: 0,
                retries: 0,
                cost: 1280,
            },
            Event::Degrade {
                t: 12,
                tenant: 3,
                qos: "best-effort".to_owned(),
                action: "reclaim".to_owned(),
                pages: 1,
            },
            Event::Degrade {
                t: 14,
                tenant: 3,
                qos: "best-effort".to_owned(),
                action: "resize".to_owned(),
                pages: 1,
            },
            Event::BudgetResize {
                t: 11,
                tenant: 3,
                kind: "pc".to_owned(),
                from: 64,
                to: 32,
            },
            Event::BudgetResize {
                t: 30,
                tenant: 3,
                kind: "pc".to_owned(),
                from: 32,
                to: 0,
            },
        ];
        let r = render_degradation(&events);
        // Drain volume accumulates per tier across passes.
        assert!(r.contains("drain/tier0"), "{r}");
        assert!(r.contains("7 frame(s) in 2 pass(es), 1 retries"), "{r}");
        // Preemptions split by (class, action).
        assert!(r.contains("best-effort/reclaim"), "{r}");
        assert!(r.contains("best-effort/resize"), "{r}");
        // The resize timeline is chronological and renders 0 as uncapped.
        assert!(r.contains("tenant 3 pc: 64 -> 32"), "{r}");
        assert!(r.contains("tenant 3 pc: 32 -> uncapped"), "{r}");
        assert!(render_rollup(&events).contains("graceful degradation:"));
        // Deterministic: same events, same bytes.
        assert_eq!(r, render_degradation(&events));
    }
}
